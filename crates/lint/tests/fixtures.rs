//! End-to-end checks of `topple-lint` against the fixture files under
//! `tests/fixtures/`, asserted through the JSON report (the same surface CI
//! consumes).

use std::path::PathBuf;

use topple_lint::config::Config;
use topple_lint::{lint_file, report, Report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture under a config and wraps it in a one-file report.
fn run(name: &str, config: &Config) -> Report {
    let findings =
        lint_file(&fixture(name), "fixture-crate", config).expect("fixture must be readable");
    Report {
        files_scanned: 1,
        findings,
    }
}

/// Built-in defaults, with the allow-by-default `lossy-cast` raised to warn
/// so the positive fixture exercises it too (the root `lint.toml` does the
/// same for `topple-stats`).
fn default_config() -> Config {
    Config::parse("[default]\nlossy-cast = \"warn\"\n").expect("config is valid")
}

#[test]
fn positive_fixture_trips_every_headline_rule() {
    let report = run("positive.rs", &default_config());
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    for expected in [
        "hash-iter",
        "unwrap",
        "wall-clock",
        "float-eq",
        "lossy-cast",
        "string-set",
    ] {
        assert!(
            rules.contains(&expected),
            "missing {expected}; got {rules:?}"
        );
    }
    assert!(
        report.deny_count() > 0,
        "headline rules must deny by default"
    );

    // The JSON report carries machine-readable locations for each finding.
    let json = report::to_json(&report, false);
    assert!(
        json.contains("\"version\": 1"),
        "report must be versioned:\n{json}"
    );
    assert!(json.contains("\"rule\": \"hash-iter\""));
    let unwrap_line = report
        .findings
        .iter()
        .find(|f| f.rule == "unwrap")
        .map(|f| f.line)
        .expect("unwrap finding present");
    assert!(json.contains(&format!("\"line\": {unwrap_line}")));
}

#[test]
fn allow_directives_suppress_justified_sites() {
    let report = run("allowed.rs", &default_config());
    // The justified hash-iter and unwrap sites are silent.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "hash-iter" || f.rule == "unwrap"),
        "justified sites must be suppressed; got {:?}",
        report.findings
    );
    // The stale directive (suppressing nothing) is itself reported.
    assert!(
        report.findings.iter().any(|f| f.rule == "allow-unused"),
        "stale allow directive must be flagged; got {:?}",
        report.findings
    );
}

#[test]
fn clean_fixture_is_silent() {
    let report = run("clean.rs", &default_config());
    assert!(
        report.findings.is_empty(),
        "clean fixture flagged: {:?}",
        report.findings
    );
    let json = report::to_json(&report, false);
    assert!(
        json.contains("\"findings\": []"),
        "JSON must carry an empty findings array:\n{json}"
    );
}

#[test]
fn lexer_edges_neither_fabricate_nor_hide_findings() {
    let report = run("lexer_edge.rs", &default_config());
    // Nothing inside the raw string or the nested block comment may match.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| matches!(f.rule, "hash-iter" | "wall-clock" | "panic")),
        "masked content fabricated findings: {:?}",
        report.findings
    );
    // The genuine unwrap after the multibyte comment must still be found,
    // on the right line with the right snippet (both depend on byte-aligned
    // masking).
    let hit = report
        .findings
        .iter()
        .find(|f| f.rule == "unwrap")
        .expect("real unwrap after multibyte text must be reported");
    assert_eq!(hit.snippet, "x.unwrap()");
    let src = std::fs::read_to_string(fixture("lexer_edge.rs")).expect("fixture readable");
    let expect_line = src
        .lines()
        .position(|l| l.contains("x.unwrap()"))
        .expect("unwrap line present")
        + 1;
    assert_eq!(hit.line, expect_line, "line number drifted: {hit:?}");
}

/// The root `lint.toml` names the result-path crates explicitly for
/// `wall-clock`; this mirrors those entries for the fixture crate.
fn result_path_config() -> Config {
    Config::parse("[crate.fixture-crate]\nwall-clock = \"deny\"\n").expect("config is valid")
}

#[test]
fn bare_clock_reads_deny_in_result_path_crates() {
    let report = run("wallclock_deny.rs", &result_path_config());
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "wall-clock")
        .collect();
    // One per read: Instant::now, SystemTime::now, and the fully-qualified
    // std::time::Instant::now.
    assert_eq!(hits.len(), 3, "got {:?}", report.findings);
    assert!(hits
        .iter()
        .all(|f| f.severity == topple_lint::config::Severity::Deny));
    assert!(report.deny_count() >= 3);
}

#[test]
fn justified_clock_reads_are_silent_even_under_deny() {
    let report = run("wallclock_allow.rs", &result_path_config());
    assert!(
        report.findings.is_empty(),
        "justified timing-harness reads must be silent: {:?}",
        report.findings
    );
}

#[test]
fn config_can_silence_and_escalate_rules() {
    let relaxed = Config::parse("[default]\nunwrap = \"allow\"\nhash-iter = \"allow\"\n")
        .expect("valid config");
    let report = run("positive.rs", &relaxed);
    assert!(!report
        .findings
        .iter()
        .any(|f| f.rule == "unwrap" || f.rule == "hash-iter"));

    let strict =
        Config::parse("[crate.fixture-crate]\nlossy-cast = \"deny\"\n").expect("valid config");
    let report = run("positive.rs", &strict);
    let cast = report
        .findings
        .iter()
        .find(|f| f.rule == "lossy-cast")
        .expect("lossy-cast reported");
    assert_eq!(cast.severity, topple_lint::config::Severity::Deny);
}

#[test]
fn hot_alloc_denies_allocation_only_inside_tagged_region() {
    let report = run("hot_alloc_deny.rs", &default_config());
    let hits: Vec<&topple_lint::Finding> = report
        .findings
        .iter()
        .filter(|f| f.rule == "hot-alloc")
        .collect();
    assert!(
        hits.len() >= 4,
        "expected Vec::new/.collect/format!/Box::new all flagged; got {:?}",
        report.findings
    );
    assert!(report.deny_count() > 0, "hot-alloc must deny by default");

    // The identical constructors outside the markers stay silent: every
    // finding lies strictly between the begin and end marker lines.
    let src = std::fs::read_to_string(fixture("hot_alloc_deny.rs")).expect("fixture readable");
    let begin = src
        .lines()
        .position(|l| l.contains("hot-path-begin"))
        .expect("begin marker")
        + 1;
    let end = src
        .lines()
        .position(|l| l.contains("hot-path-end"))
        .expect("end marker")
        + 1;
    for f in &hits {
        assert!(
            f.line > begin && f.line < end,
            "finding escaped the region: {f:?}"
        );
    }
}

#[test]
fn hot_alloc_allows_justified_amortized_growth() {
    let report = run("hot_alloc_allow.rs", &default_config());
    let relevant: Vec<&topple_lint::Finding> = report
        .findings
        .iter()
        .filter(|f| matches!(f.rule, "hot-alloc" | "allow-unused" | "allow-empty"))
        .collect();
    assert!(
        relevant.is_empty(),
        "justified growth in a hot region must be silent (and the directive \
         must count as used); got {relevant:?}"
    );
}
