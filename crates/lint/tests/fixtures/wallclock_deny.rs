//! Positive fixture for the `wall-clock` rule: bare clock reads like a
//! result-path crate might compile, no justification anywhere. Every site
//! below must be reported (deny in result-path crates).

use std::time::{Duration, Instant, SystemTime};

pub fn timestamp_a_result() -> Duration {
    // A wall-clock read flowing straight into a returned value: the exact
    // hazard the rule exists for.
    let begun = Instant::now();
    begun.elapsed()
}

pub fn stamp_with_system_time() -> SystemTime {
    SystemTime::now()
}

pub fn qualified_read() -> std::time::Instant {
    std::time::Instant::now()
}
