//! Known-bad fixture: trips all three call-graph rules.
//!
//! 1. `side_channel` consumes RNG but is unreachable from the roots
//!    (`rng-leak`).
//! 2. `simulate_day_into` issues an extra `uniform` draw the pinned manifest
//!    does not list (`epoch-drift`).
//! 3. `Study::run` renders a hash-collected vector without sorting it
//!    (`unordered-iteration`).

pub const DETERMINISM_EPOCH: u32 = 1;

pub fn substream(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn chance(rng: &mut SmallRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

pub struct World;

impl World {
    pub fn simulate_day_into(&self, seed: u64) -> u64 {
        let mut rng = substream(seed);
        let mut total = 0;
        if chance(&mut rng, 0.5) {
            total += rng.random_range(0..4);
        }
        // The drift: a draw the manifest has never heard of.
        total += rng.random::<u64>();
        total
    }
}

pub struct Study;

impl Study {
    pub fn run(world: &World) -> u64 {
        let days = world.simulate_day_into(7);
        let index: HashMap<u64, u64> = build_index(days);
        // Unsorted hash-order collection consumed directly.
        let picked: Vec<u64> = index.keys().copied().collect();
        picked.first().copied().unwrap_or(days)
    }
}

fn build_index(days: u64) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(days, days);
    m
}

// Never called from the roots: its draws bypass the epoch contract.
pub fn side_channel(rng: &mut SmallRng) -> f64 {
    rng.random()
}
