//! Known-good fixture: every RNG consumer is reachable from the roots, the
//! manifest matches the sources, and hash iteration is sorted before use.

pub const DETERMINISM_EPOCH: u32 = 1;

pub fn substream(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

pub fn chance(rng: &mut SmallRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

pub struct World;

impl World {
    pub fn simulate_day_into(&self, seed: u64) -> u64 {
        let mut rng = substream(seed);
        let mut total = 0;
        if chance(&mut rng, 0.5) {
            total += rng.random_range(0..4);
        }
        total
    }
}

pub struct Study;

impl Study {
    pub fn run(world: &World) -> u64 {
        let days = world.simulate_day_into(7);
        let index: HashMap<u64, u64> = build_index(days);
        // Sorted before rendering: hash order never reaches the output.
        let mut keys: Vec<u64> = index.keys().copied().collect();
        keys.sort_unstable();
        keys.first().copied().unwrap_or(days)
    }
}

fn build_index(days: u64) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(days, days);
    m
}
