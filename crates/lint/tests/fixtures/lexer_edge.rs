//! Lexer edge cases: raw strings, nested block comments, and multibyte text
//! must neither fabricate matches from masked-out content nor hide (or
//! mislocate) real findings that follow them.

/* nested /* HashMap::new().iter() */ std::time::Instant::now() */

pub fn masked_content_is_not_matched() -> &'static str {
    // Raw-string body full of rule-shaped text; all of it is masked.
    r##"map.iter().collect::<Vec<_>>() .unwrap() panic!("no") "# inner"##
}

// A multibyte comment — é π ✓ — once desynced every later byte offset…
pub fn real_finding_after_multibyte_comment(x: Option<u32>) -> u32 {
    x.unwrap()
}
