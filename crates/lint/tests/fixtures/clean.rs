//! Fixture: idiomatic code that every rule should pass untouched.
//! Never compiled — consumed by `tests/fixtures.rs`.

use std::collections::BTreeMap;

pub fn ordered(m: &BTreeMap<String, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

pub fn fallible(s: &str) -> Option<u32> {
    s.parse().ok()
}

pub fn close_enough(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-9
}
