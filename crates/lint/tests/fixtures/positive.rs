//! Fixture: one violation of each headline rule, no suppressions.
//! Never compiled — consumed by `tests/fixtures.rs` through `lint_file`.

use std::collections::HashMap;

pub fn order_dependent(m: &HashMap<String, u32>) -> Vec<u32> {
    m.values().copied().collect()
}

pub fn panics_on_err(s: &str) -> u32 {
    s.parse().unwrap()
}

pub fn reads_wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn exact_float(a: f64, b: f64) -> bool {
    a == b
}

pub fn truncates(x: f64) -> u32 {
    x as u32
}

pub fn string_set(names: &[String]) -> usize {
    let set: std::collections::HashSet<&str> = names.iter().map(|s| s.as_str()).collect();
    set.len()
}
