//! Negative fixture for the `hot-alloc` rule: a per-event region whose only
//! allocation is justified (amortized growth), plus allocation-free scratch
//! use — the linter must stay silent, and the directive must count as used
//! (no `allow-unused` either).

pub struct Scratch {
    stamps: Vec<u64>,
    epoch: u64,
}

impl Scratch {
    pub fn accumulate(&mut self, events: &[u32]) -> u64 {
        let mut seen = 0;
        // topple-lint: hot-path-begin
        for &e in events {
            let slot = (e as usize) % self.stamps.len();
            if self.stamps[slot] != self.epoch {
                self.stamps[slot] = self.epoch;
                seen += 1;
            }
            if seen as usize == self.stamps.len() {
                // topple-lint: allow(hot-alloc): amortized doubling, hit at most log(n) times per day
                let mut grown = Vec::with_capacity(self.stamps.len() * 2);
                grown.extend_from_slice(&self.stamps);
                self.stamps = grown;
            }
        }
        // topple-lint: hot-path-end
        seen
    }
}
