//! Negative fixture for the `wall-clock` rule: the same clock reads as
//! `wallclock_deny.rs`, each carrying the justified directive a timing
//! harness is expected to write. Must lint silent under every severity.

use std::time::{Duration, Instant};

pub fn measure_latency() -> Duration {
    // topple-lint: allow(wall-clock): latency metric for operator output; never enters a result
    let begun = Instant::now();
    begun.elapsed()
}

pub fn deadline_check(limit: Duration) -> bool {
    // topple-lint: allow(wall-clock): graceful-drain deadline; timing only, results unaffected
    let begun = Instant::now();
    begun.elapsed() > limit
}
