//! Fixture: the same shapes as `positive.rs`, each justified with an
//! allow directive. Never compiled — consumed by `tests/fixtures.rs`.

use std::collections::HashMap;

pub fn summed(m: &HashMap<String, u32>) -> u64 {
    // topple-lint: allow(hash-iter): folded into an order-insensitive sum
    m.values().map(|&v| u64::from(v)).sum()
}

pub fn parses_constant() -> u32 {
    // topple-lint: allow(unwrap): literal is a valid u32
    "7".parse().unwrap()
}

pub fn stale_directive() -> u32 {
    // topple-lint: allow(panic): nothing below can panic any more
    7
}
