//! Positive fixture for the `hot-alloc` rule: allocating constructors and
//! adaptors inside a tagged per-event region, no justification anywhere.
//! Every site inside the region must be reported; identical code outside
//! the region must stay silent.

/// Outside any region: allocation is fine here.
pub fn setup() -> Vec<u32> {
    let mut warm = Vec::new();
    warm.push(1);
    warm
}

pub fn per_event_accumulate(events: &[u32]) -> usize {
    let mut total = 0;
    // topple-lint: hot-path-begin
    for &e in events {
        let scratch = Vec::new(); // flagged: fresh Vec per event
        let doubled: Vec<u32> = events.iter().map(|&x| x + e).collect(); // flagged
        let label = format!("event {e}"); // flagged
        let boxed = Box::new(e); // flagged
        total += scratch.len() + doubled.len() + label.len() + *boxed as usize;
    }
    // topple-lint: hot-path-end
    total
}

/// After the region closed: silent again.
pub fn teardown(n: usize) -> Vec<u8> {
    vec![0; n]
}
