//! End-to-end checks of the call-graph rules (`rng-leak`, `epoch-drift`,
//! `unordered-iteration`) against the fixture mini-workspaces under
//! `tests/fixtures/epoch_good/` and `tests/fixtures/epoch_bad/`.

use std::path::PathBuf;

use topple_lint::config::{Config, Severity};
use topple_lint::{epoch, lex_workspace, lint_workspace};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The lexical `hash-iter` rule intentionally overlaps the cross-statement
/// `unordered-iteration` check (it flags the collect itself); silence it so
/// these tests isolate the graph rules. `unordered-iteration` is escalated
/// the way `lint.toml` escalates it for result-path crates.
fn graph_config() -> Config {
    Config::parse(
        "[default]\nhash-iter = \"allow\"\n\n\
         [crate.fixture-sim]\nunordered-iteration = \"deny\"\n",
    )
    .expect("config is valid")
}

#[test]
fn good_workspace_is_silent_on_graph_rules() {
    let report =
        lint_workspace(&fixture_root("epoch_good"), &graph_config()).expect("workspace lints");
    let graph: Vec<_> = report
        .findings
        .iter()
        .filter(|f| matches!(f.rule, "rng-leak" | "epoch-drift" | "unordered-iteration"))
        .collect();
    assert!(
        graph.is_empty(),
        "known-good workspace tripped graph rules: {graph:?}"
    );
}

#[test]
fn bad_workspace_trips_all_three_graph_rules() {
    let report =
        lint_workspace(&fixture_root("epoch_bad"), &graph_config()).expect("workspace lints");

    let leak = report
        .findings
        .iter()
        .find(|f| f.rule == "rng-leak")
        .expect("unreachable RNG consumer must be flagged");
    assert!(
        leak.message.contains("side_channel"),
        "wrong function flagged: {leak:?}"
    );
    assert_eq!(
        leak.severity,
        Severity::Deny,
        "rng-leak must deny: {leak:?}"
    );

    let drift = report
        .findings
        .iter()
        .find(|f| f.rule == "epoch-drift")
        .expect("extra draw must surface as epoch-drift");
    assert!(
        drift.message.contains("simulate_day_into"),
        "drift must name the changed site: {drift:?}"
    );
    assert_eq!(drift.severity, Severity::Deny);
    assert!(
        drift.file.ends_with("lib.rs"),
        "changed sites anchor at the function: {drift:?}"
    );

    let unordered = report
        .findings
        .iter()
        .find(|f| f.rule == "unordered-iteration")
        .expect("unsorted hash-order consumption must be flagged");
    assert!(
        unordered.message.contains("picked"),
        "must name the collected binding: {unordered:?}"
    );
    assert_eq!(
        unordered.severity,
        Severity::Deny,
        "config escalates unordered-iteration for fixture-sim"
    );
}

#[test]
fn emitted_manifest_round_trips_against_the_good_fixture() {
    let root = fixture_root("epoch_good");
    let files = lex_workspace(&root).expect("workspace lexes");
    let analysis = epoch::analyze(&files);
    assert!(analysis.roots_found, "fixture must define both roots");
    assert_eq!(analysis.epoch_const, Some(1));
    assert_eq!(
        analysis.epochs,
        [1],
        "single-epoch fixture declares exactly epoch 1"
    );

    let computed = epoch::Manifest::from_analysis(&analysis, 1);
    let pinned = epoch::Manifest::load(&root, epoch::MANIFEST_FILE)
        .expect("manifest parses")
        .expect("manifest present");
    let drift = epoch::drift(&computed, &pinned, epoch::MANIFEST_FILE);
    assert!(drift.is_empty(), "good fixture drifted: {drift:#?}");

    // The rendered form parses back to the same manifest (emit → verify).
    let reparsed = epoch::Manifest::parse(&computed.render()).expect("rendered manifest parses");
    assert_eq!(reparsed, computed);
}

#[test]
fn drift_messages_name_every_difference_kind() {
    let root = fixture_root("epoch_bad");
    let files = lex_workspace(&root).expect("workspace lexes");
    let computed = epoch::Manifest::from_analysis(&epoch::analyze(&files), 1);
    let pinned = epoch::Manifest::load(&root, epoch::MANIFEST_FILE)
        .expect("manifest parses")
        .expect("manifest present");
    let msgs = epoch::drift(&computed, &pinned, epoch::MANIFEST_FILE);
    assert_eq!(msgs.len(), 1, "exactly the changed site: {msgs:#?}");
    assert!(
        msgs[0].contains("draw sequence changed")
            && msgs[0].contains("simulate_day_into")
            && msgs[0].contains("uniform"),
        "message must carry pinned vs computed sequences: {}",
        msgs[0]
    );
}
