//! Distributional checks on the generated world: the configured shares and
//! shapes must actually materialize in the sampled population and traffic.

// Test harness: aborting on a broken fixture is the correct failure mode
// (clippy.toml's allow-*-in-tests covers `#[test]` fns but not helpers).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;

use topple_sim::{Browser, Category, Country, Platform, World, WorldConfig};

fn world() -> World {
    World::generate(WorldConfig::medium(7777)).unwrap()
}

#[test]
fn client_countries_match_population_shares() {
    let w = world();
    let n = w.clients.len() as f64;
    let mut counts: HashMap<Country, usize> = HashMap::new();
    for c in &w.clients {
        *counts.entry(c.country).or_default() += 1;
    }
    for country in Country::ALL {
        let expected = country.population_share();
        let observed = *counts.get(&country).unwrap_or(&0) as f64 / n;
        // Binomial std-dev tolerance (4 sigma).
        let sigma = (expected * (1.0 - expected) / n).sqrt();
        assert!(
            (observed - expected).abs() < 4.0 * sigma + 0.005,
            "{country:?}: observed {observed:.4}, expected {expected:.4}"
        );
    }
}

#[test]
fn site_categories_match_universe_shares() {
    let w = world();
    let n = w.sites.len() as f64;
    let mut counts: HashMap<Category, usize> = HashMap::new();
    for s in &w.sites {
        *counts.entry(s.category).or_default() += 1;
    }
    for cat in Category::ALL {
        let expected = cat.universe_share();
        let observed = *counts.get(&cat).unwrap_or(&0) as f64 / n;
        let sigma = (expected * (1.0 - expected) / n).sqrt();
        assert!(
            (observed - expected).abs() < 4.0 * sigma + 0.004,
            "{cat:?}: observed {observed:.4}, expected {expected:.4}"
        );
    }
}

#[test]
fn traffic_follows_zipf_shape() {
    // Regress log(visits) on log(base rank) over the head of the catalogue;
    // the slope should approximate -zipf_exponent.
    let w = World::generate(WorldConfig {
        n_clients: 4_000,
        ..WorldConfig::small(7778)
    })
    .unwrap();
    let mut visits = vec![0u32; w.sites.len()];
    for d in 0..7 {
        let t = w.simulate_day(d);
        for pl in &t.page_loads {
            visits[pl.site.index()] += 1;
        }
    }
    // Sites are generated in base-rank order; average within log-spaced bins
    // to suppress per-site noise.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut lo = 1usize;
    while lo < 1000.min(w.sites.len()) {
        let hi = (lo * 2).min(w.sites.len());
        let mean_v: f64 =
            visits[lo..hi].iter().map(|&v| f64::from(v)).sum::<f64>() / (hi - lo) as f64;
        if mean_v > 0.0 {
            xs.push(((lo + hi) as f64 / 2.0).ln());
            ys.push(mean_v.ln());
        }
        lo = hi;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let slope: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.iter().map(|x| (x - mx) * (x - mx)).sum::<f64>();
    let expected = -w.config.zipf_exponent;
    assert!(
        (slope - expected).abs() < 0.35,
        "traffic slope {slope:.2} should approximate {expected:.2}"
    );
}

#[test]
fn browser_platform_constraints_hold() {
    let w = world();
    for c in &w.clients {
        match c.platform {
            Platform::Ios => assert!(
                matches!(
                    c.browser,
                    Browser::Safari | Browser::Chrome | Browser::OtherBrowser
                ),
                "implausible iOS browser {:?}",
                c.browser
            ),
            Platform::Android => assert!(
                !matches!(
                    c.browser,
                    Browser::Safari | Browser::Edge | Browser::Automation
                ),
                "implausible Android browser {:?}",
                c.browser
            ),
            _ => {}
        }
    }
    // Chrome is the plurality browser overall.
    let chrome = w
        .clients
        .iter()
        .filter(|c| c.browser == Browser::Chrome)
        .count();
    assert!(
        chrome * 3 > w.clients.len(),
        "Chrome share too low: {chrome}/{}",
        w.clients.len()
    );
}

#[test]
fn mobile_shares_track_country_parameters() {
    let w = world();
    for country in [Country::India, Country::Germany] {
        let clients: Vec<_> = w.clients.iter().filter(|c| c.country == country).collect();
        if clients.len() < 100 {
            continue;
        }
        let mobile =
            clients.iter().filter(|c| c.platform.is_mobile()).count() as f64 / clients.len() as f64;
        let expected = country.mobile_share();
        assert!(
            (mobile - expected).abs() < 0.08,
            "{country:?}: mobile share {mobile:.2} vs configured {expected:.2}"
        );
    }
}

#[test]
fn weekday_total_volume_is_periodic() {
    let w = World::generate(WorldConfig {
        n_clients: 2_000,
        ..WorldConfig::small(7779)
    })
    .unwrap();
    // Enterprise clients drop off on weekends; totals should dip.
    let days: Vec<f64> = (0..14)
        .map(|d| w.simulate_day(d).page_loads.len() as f64)
        .collect();
    let weekend_days: Vec<usize> = w
        .config
        .days
        .iter()
        .take(14)
        .enumerate()
        .filter(|(_, d)| d.weekday().is_weekend())
        .map(|(i, _)| i)
        .collect();
    assert!(!weekend_days.is_empty());
    let weekend_mean: f64 =
        weekend_days.iter().map(|&i| days[i]).sum::<f64>() / weekend_days.len() as f64;
    let weekday_mean: f64 = days
        .iter()
        .enumerate()
        .filter(|(i, _)| !weekend_days.contains(i))
        .map(|(_, v)| v)
        .sum::<f64>()
        / (days.len() - weekend_days.len()) as f64;
    // Direction depends on the enterprise/consumer mix; just require a
    // measurable, consistent weekly signal.
    assert!(
        (weekend_mean - weekday_mean).abs() / weekday_mean > 0.005,
        "no weekly periodicity: weekday {weekday_mean:.0} vs weekend {weekend_mean:.0}"
    );
}

#[test]
fn certify_boosts_exist_but_are_rare_and_never_grey() {
    let w = world();
    let boosted: Vec<_> = w.sites.iter().filter(|s| s.certify_boost > 1.0).collect();
    assert!(!boosted.is_empty(), "no certified sites generated");
    assert!(
        boosted.len() < w.sites.len() / 10,
        "too many certified sites: {}",
        boosted.len()
    );
    for s in &boosted {
        assert!(
            !matches!(
                s.category,
                Category::Adult | Category::Abuse | Category::Parked
            ),
            "{:?} site should not be certified",
            s.category
        );
    }
}
