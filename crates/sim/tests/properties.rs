//! Property-based tests over world generation and traffic invariants.

use proptest::prelude::*;
use topple_sim::{Date, World, WorldConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn worlds_generate_for_any_seed(seed in any::<u64>()) {
        let w = World::generate(WorldConfig::tiny(seed)).unwrap();
        prop_assert_eq!(w.sites.len(), 400);
        prop_assert_eq!(w.clients.len(), 300);
        // All site country mixes are distributions.
        for s in &w.sites {
            let total: f64 = s.country_mix.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
        // Domain index covers every site.
        for s in &w.sites {
            prop_assert!(w.site_by_domain(&s.domain).is_some());
        }
    }

    #[test]
    fn traffic_invariants_for_any_seed(seed in any::<u64>(), day in 0usize..7) {
        let w = World::generate(WorldConfig::tiny(seed)).unwrap();
        let t = w.simulate_day(day);
        for pl in &t.page_loads {
            prop_assert!(pl.site.index() < w.sites.len());
            prop_assert!(pl.client.index() < w.clients.len());
            prop_assert!((pl.host_idx as usize) < w.sites[pl.site.index()].hosts.len());
            prop_assert!(u32::from(pl.non200) <= pl.total_requests());
            if !pl.completed {
                prop_assert_eq!(pl.dwell_secs, 0);
            }
        }
        for tp in &t.third_party {
            prop_assert!(w.sites[tp.site.index()].is_infrastructure);
            prop_assert!(tp.requests >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_roundtrips(year in 1900i32..2100, month in 1u8..=12, day in 1u8..=28) {
        let d = Date::new(year, month, day);
        // succ() advances by exactly one day within a month.
        let next = d.succ();
        prop_assert!(next > d);
        // Weekdays cycle with period 7.
        let mut cur = d;
        for _ in 0..7 {
            cur = cur.succ();
        }
        prop_assert_eq!(cur.weekday(), d.weekday());
    }

    #[test]
    fn iter_days_is_consecutive(year in 1980i32..2050, month in 1u8..=12, count in 1usize..40) {
        let d = Date::new(year, month, 1);
        let days: Vec<Date> = d.iter_days(count).collect();
        prop_assert_eq!(days.len(), count);
        for pair in days.windows(2) {
            prop_assert_eq!(pair[0].succ(), pair[1]);
        }
    }
}
