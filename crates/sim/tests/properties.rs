//! Property-based tests over world generation and traffic invariants.

use proptest::prelude::*;
use rand::{Rng, RngCore};
use topple_sim::rng::{normal_from_uniforms, poisson_from_normal, substream, Stream};
use topple_sim::{Date, UniformBlock, World, WorldConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn worlds_generate_for_any_seed(seed in any::<u64>()) {
        let w = World::generate(WorldConfig::tiny(seed)).unwrap();
        prop_assert_eq!(w.sites.len(), 400);
        prop_assert_eq!(w.clients.len(), 300);
        // All site country mixes are distributions.
        for s in &w.sites {
            let total: f64 = s.country_mix.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }
        // Domain index covers every site.
        for s in &w.sites {
            prop_assert!(w.site_by_domain(&s.domain).is_some());
        }
    }

    #[test]
    fn traffic_invariants_for_any_seed(seed in any::<u64>(), day in 0usize..7, epoch in 1u32..=2) {
        let config = WorldConfig {
            epoch: Some(epoch),
            ..WorldConfig::tiny(seed)
        };
        let w = World::generate(config).unwrap();
        let t = w.simulate_day(day);
        for pl in &t.page_loads {
            prop_assert!(pl.site.index() < w.sites.len());
            prop_assert!(pl.client.index() < w.clients.len());
            prop_assert!((pl.host_idx as usize) < w.sites[pl.site.index()].hosts.len());
            prop_assert!(u32::from(pl.non200) <= pl.total_requests());
            if !pl.completed {
                prop_assert_eq!(pl.dwell_secs, 0);
            }
        }
        for tp in &t.third_party {
            prop_assert!(w.sites[tp.site.index()].is_infrastructure);
            prop_assert!(tp.requests >= 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Epoch-2 contract: the batched block is a pure *re-buffering* of the
    // scalar stream. Feeding the same substream through `UniformBlock` and
    // through scalar `RngCore`/`Rng` calls must yield identical bytes.

    #[test]
    fn block_words_replay_the_scalar_stream(seed in any::<u64>(), index in any::<u64>(), n in 1usize..700) {
        let mut scalar = substream(seed, Stream::TrafficClient, index);
        let mut batched = substream(seed, Stream::TrafficClient, index);
        let mut block = UniformBlock::new();
        for _ in 0..n {
            prop_assert_eq!(block.take_word(&mut batched), scalar.next_u64());
        }
    }

    #[test]
    fn block_f64_matches_vendored_uniform(seed in any::<u64>(), n in 1usize..300) {
        let mut scalar = substream(seed, Stream::TrafficClient, 0);
        let mut batched = substream(seed, Stream::TrafficClient, 0);
        let mut block = UniformBlock::new();
        for _ in 0..n {
            let want: f64 = scalar.random();
            prop_assert_eq!(block.take_f64(&mut batched).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn block_chance_matches_scalar_threshold(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut scalar = substream(seed, Stream::TrafficClient, 1);
        let mut batched = substream(seed, Stream::TrafficClient, 1);
        let mut block = UniformBlock::new();
        for _ in 0..64 {
            let want = scalar.random::<f64>() < p;
            prop_assert_eq!(block.take_chance(&mut batched, p), want);
        }
    }

    #[test]
    fn block_normal_is_box_muller_of_scalar_uniforms(seed in any::<u64>()) {
        let mut scalar = substream(seed, Stream::TrafficClient, 2);
        let mut batched = substream(seed, Stream::TrafficClient, 2);
        let mut block = UniformBlock::new();
        for _ in 0..64 {
            let u1: f64 = scalar.random();
            let u2: f64 = scalar.random();
            let want = normal_from_uniforms(u1, u2);
            prop_assert_eq!(block.take_normal(&mut batched).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn block_poisson_large_lambda_matches_scalar_normal(seed in any::<u64>(), lambda in 30.0f64..500.0) {
        let mut scalar = substream(seed, Stream::TrafficClient, 3);
        let mut batched = substream(seed, Stream::TrafficClient, 3);
        let mut block = UniformBlock::new();
        for _ in 0..32 {
            let u1: f64 = scalar.random();
            let u2: f64 = scalar.random();
            let want = poisson_from_normal(lambda, normal_from_uniforms(u1, u2));
            prop_assert_eq!(block.take_poisson(&mut batched, lambda), want);
        }
    }

    #[test]
    fn block_reset_discards_the_tail(seed in any::<u64>(), consumed in 0usize..128) {
        // After a reset, the next take refills from the rng's *current*
        // position — leftover buffered words never leak across clients.
        let mut rng = substream(seed, Stream::TrafficClient, 4);
        let mut block = UniformBlock::new();
        for _ in 0..consumed {
            let _ = block.take_word(&mut rng);
        }
        block.reset();
        let mut fresh = substream(seed, Stream::TrafficClient, 4);
        // Skip the words already pulled out of the shared stream: a full
        // refill's worth if any were consumed.
        if consumed > 0 {
            for _ in 0..128 {
                let _ = fresh.next_u64();
            }
        }
        prop_assert_eq!(block.take_word(&mut rng), fresh.next_u64());
    }

    #[test]
    fn calendar_roundtrips(year in 1900i32..2100, month in 1u8..=12, day in 1u8..=28) {
        let d = Date::new(year, month, day);
        // succ() advances by exactly one day within a month.
        let next = d.succ();
        prop_assert!(next > d);
        // Weekdays cycle with period 7.
        let mut cur = d;
        for _ in 0..7 {
            cur = cur.succ();
        }
        prop_assert_eq!(cur.weekday(), d.weekday());
    }

    #[test]
    fn iter_days_is_consecutive(year in 1980i32..2050, month in 1u8..=12, count in 1usize..40) {
        let d = Date::new(year, month, 1);
        let days: Vec<Date> = d.iter_days(count).collect();
        prop_assert_eq!(days.len(), count);
        for pair in days.windows(2) {
            prop_assert_eq!(pair[0].succ(), pair[1]);
        }
    }
}
