//! The traffic engine: turns the world into per-day event streams.
//!
//! The primary interface is streaming: [`World::simulate_day_into`] pushes
//! each event — page loads (navigations with their same-site subresource
//! expansion), third-party fetches to embedded infrastructure zones, and
//! background DNS queries — into an [`EventSink`] by reference as it is
//! generated, so a full day never has to exist in memory at once. Observer
//! crates consume these streams; nothing downstream sees ground-truth
//! weights. [`World::simulate_day`] remains as a thin compatibility layer
//! that collects the stream into a materialized [`DayTraffic`] (via
//! [`CollectSink`]).
//!
//! Day simulation derives its RNG from `(seed, day index)`, so days are
//! independent and can be generated in any order or in parallel. The
//! streaming and materialized paths draw from the same RNG stream in the
//! same order, so they describe the *same* day.

use rand::Rng;
use topple_stats::cast;

use crate::batch::UniformBlock;
use crate::client::day_factor_for;
use crate::date::Date;
use crate::ids::{ClientId, SiteId};
use crate::rng::{chance, log_normal, poisson, substream, Stream};
use crate::soa::{
    CLIENT_ENTERPRISE, CLIENT_MOBILE, CLIENT_PANELIST, SITE_HTTPS, SITE_PANEL_AVERSE,
};
use crate::world::World;

/// One user-initiated page load and its same-site request expansion.
#[derive(Debug, Clone)]
pub struct PageLoad {
    /// The browsing client.
    pub client: ClientId,
    /// The site navigated to.
    pub site: SiteId,
    /// Index into the site's `hosts` of the navigated FQDN.
    pub host_idx: u8,
    /// Whether the navigation landed on the root path `/`.
    pub is_root_path: bool,
    /// Whether the navigation followed a hyperlink (sends a `Referer`).
    pub link_click: bool,
    /// Whether the load happened in a private browsing window.
    pub private_mode: bool,
    /// Whether the load completed (reached First Contentful Paint).
    pub completed: bool,
    /// Dwell time in seconds (0 when not completed).
    pub dwell_secs: u16,
    /// Same-site subresource requests beyond the main HTML document.
    pub own_requests: u16,
    /// Of the `own_requests + 1` requests, how many returned non-200.
    pub non200: u16,
    /// TLS handshakes performed against the site (0 for plain-HTTP sites).
    pub tls_handshakes: u16,
    /// Whether the client's stub resolver had to query upstream for this
    /// site's zone (first contact today).
    pub dns_fresh: bool,
}

impl PageLoad {
    /// Total same-site HTTP requests including the main document.
    pub fn total_requests(&self) -> u32 {
        u32::from(self.own_requests) + 1
    }
}

/// A batch of subresource requests to a third-party infrastructure zone.
#[derive(Debug, Clone)]
pub struct ThirdPartyFetch {
    /// The browsing client.
    pub client: ClientId,
    /// The third-party zone being fetched.
    pub site: SiteId,
    /// Index of the fetched service host within that zone.
    pub host_idx: u8,
    /// Number of HTTP requests in the batch.
    pub requests: u16,
    /// How many returned non-200.
    pub non200: u16,
    /// TLS handshakes (0 for plain-HTTP zones).
    pub tls_handshakes: u16,
    /// Stub-cache miss for the zone (first contact today).
    pub dns_fresh: bool,
    /// Whether the embedding page was in a private window.
    pub private_mode: bool,
}

/// A background (non-browsing) DNS query made by a device or OS job.
#[derive(Debug, Clone)]
pub struct BackgroundQuery {
    /// The querying client.
    pub client: ClientId,
    /// Index into [`World::background_names`].
    pub name_idx: u16,
}

/// Everything that happened on one simulated day.
#[derive(Debug, Clone)]
pub struct DayTraffic {
    /// Calendar day.
    pub day: Date,
    /// Index within the configured window.
    pub day_index: usize,
    /// User page loads.
    pub page_loads: Vec<PageLoad>,
    /// Third-party fetch batches.
    pub third_party: Vec<ThirdPartyFetch>,
    /// Background DNS queries.
    pub background: Vec<BackgroundQuery>,
}

/// A streaming consumer of one day's traffic.
///
/// [`World::simulate_day_into`] calls these hooks in generation order: each
/// page load, then (for completed loads) its third-party expansion, with a
/// client's background queries after its loads. Events arrive by reference
/// and are dropped after the call — a sink that needs an event beyond the
/// callback must copy the fields it cares about.
///
/// Per-day aggregations built on this interface must not depend on event
/// *order* beyond what the materialized [`DayTraffic`] vectors guarantee:
/// the streamed order interleaves page loads with their third-party fetches,
/// whereas `DayTraffic` segregates the three streams. All shard builders in
/// `topple-vantage` are order-independent (exact sets and commutative
/// counters), which is what makes the two paths byte-identical.
pub trait EventSink {
    /// One user navigation with its same-site request expansion.
    fn page_load(&mut self, pl: &PageLoad);
    /// One batch of subresource requests to a third-party zone.
    fn third_party(&mut self, tp: &ThirdPartyFetch);
    /// One background (non-browsing) DNS query.
    fn background(&mut self, bg: &BackgroundQuery);
}

/// Reusable per-worker state for [`World::simulate_day_into`].
///
/// Holds the per-day stub-resolver cache as a site-indexed table of
/// generation stamps (instead of a freshly allocated hash set per day) and
/// the per-client revisit list. After a warm-up day, simulating further days
/// through the same scratch performs no heap allocation.
#[derive(Debug)]
pub struct TrafficScratch {
    /// `stub_gen[site] == gen` ⇔ the current client already contacted
    /// `site`'s zone today. `gen` is bumped once per (client, day), which
    /// invalidates every stamp in O(1) without clearing the table.
    stub_gen: Vec<u64>,
    gen: u64,
    /// The current client's sites visited so far today (revisit pool).
    today: Vec<u32>,
    /// Epoch-2 block-filled uniform buffer (idle under epoch 1).
    block: UniformBlock,
    /// Epoch-2 per-client site selections (phase 1 output, phase 2 input;
    /// idle under epoch 1). Pre-sized so pushes never reallocate.
    picks: Vec<u32>,
}

impl TrafficScratch {
    /// Creates scratch sized for `world`'s site universe.
    pub fn for_world(world: &World) -> Self {
        // Loads per (client, day) are Poisson with mean activity × day
        // factor; size the pick buffer past the busiest client's mean by a
        // wide margin so the hot path never grows it.
        let max_activity = world
            .clients
            .iter()
            .map(|c| c.activity)
            .fold(0.0f32, f32::max);
        // topple-lint: allow(lossy-cast): capacity sizing; activity is bounded (≤ a few thousand)
        let picks_cap = ((max_activity * 1.5) as usize + 64).max(1024);
        TrafficScratch {
            stub_gen: vec![0; world.sites.len()],
            gen: 0,
            today: Vec::with_capacity(64),
            block: UniformBlock::new(),
            picks: Vec::with_capacity(picks_cap),
        }
    }

    /// Starts a fresh (client, day) scope: one bump invalidates all stamps.
    fn next_client(&mut self) {
        self.gen += 1; // u64 never wraps in any feasible run
        self.today.clear();
    }

    /// Marks `site`'s zone as contacted by the current client; returns
    /// whether this was the first contact (a stub-cache miss).
    fn stub_fresh(&mut self, site: SiteId) -> bool {
        stub_fresh_at(&mut self.stub_gen, self.gen, site.index())
    }
}

/// The stamp update behind [`TrafficScratch::stub_fresh`], usable on the
/// destructured scratch (the epoch-2 loop splits the scratch borrows).
#[inline]
fn stub_fresh_at(stub_gen: &mut [u64], generation: u64, site: usize) -> bool {
    let slot = &mut stub_gen[site];
    let fresh = *slot != generation;
    *slot = generation;
    fresh
}

/// An [`EventSink`] that materializes the stream into the three event
/// vectors of a [`DayTraffic`] — the compatibility bridge from the streaming
/// engine to consumers that want whole-day buffers.
#[derive(Debug, Default)]
pub struct CollectSink {
    /// Collected page loads, in generation order.
    pub page_loads: Vec<PageLoad>,
    /// Collected third-party fetches, in generation order.
    pub third_party: Vec<ThirdPartyFetch>,
    /// Collected background queries, in generation order.
    pub background: Vec<BackgroundQuery>,
}

impl CollectSink {
    /// Wraps the collected events into a [`DayTraffic`] for `day`.
    pub fn into_day_traffic(self, day: Date, day_index: usize) -> DayTraffic {
        DayTraffic {
            day,
            day_index,
            page_loads: self.page_loads,
            third_party: self.third_party,
            background: self.background,
        }
    }
}

impl EventSink for CollectSink {
    fn page_load(&mut self, pl: &PageLoad) {
        self.page_loads.push(pl.clone());
    }

    fn third_party(&mut self, tp: &ThirdPartyFetch) {
        self.third_party.push(tp.clone());
    }

    fn background(&mut self, bg: &BackgroundQuery) {
        self.background.push(bg.clone());
    }
}

impl World {
    /// Simulates one day of the configured window, collecting the event
    /// stream into a materialized [`DayTraffic`]. Deterministic in
    /// `(config.seed, day_index)` and independent across days.
    ///
    /// This is a compatibility wrapper over [`World::simulate_day_into`]
    /// with a [`CollectSink`]; the fused study pipeline streams instead.
    ///
    /// # Panics
    ///
    /// Panics if `day_index` is outside the configured window.
    pub fn simulate_day(&self, day_index: usize) -> DayTraffic {
        let day = self.config.days[day_index];
        let mut sink = CollectSink::default();
        let mut scratch = TrafficScratch::for_world(self);
        self.simulate_day_into(day_index, &mut scratch, &mut sink);
        sink.into_day_traffic(day, day_index)
    }

    /// Simulates one day of the configured window, pushing each event into
    /// `sink` as it is generated — no per-day event buffers. Deterministic
    /// in `(config.seed, day_index)`: it draws the same RNG stream in the
    /// same order as [`World::simulate_day`], so for a given day both paths
    /// emit the same events.
    ///
    /// `scratch` may be reused across days and worlds of the same site count
    /// (see [`TrafficScratch`]); reuse is what makes the fused ingestion
    /// path allocation-free per day.
    ///
    /// # Panics
    ///
    /// Panics if `day_index` is outside the configured window or `scratch`
    /// was built for a smaller site universe.
    pub fn simulate_day_into<S: EventSink>(
        &self,
        day_index: usize,
        scratch: &mut TrafficScratch,
        sink: &mut S,
    ) {
        // Pure dispatch — this function issues no draws itself, so each
        // epoch's contract is exactly its implementation's reachable set.
        // `World::generate` validated the effective epoch against
        // `SUPPORTED_EPOCHS`; any epoch above 1 is the batched generator.
        if self.config.effective_epoch() == 1 {
            self.simulate_day_epoch1(day_index, scratch, sink);
        } else {
            self.simulate_day_epoch2(day_index, scratch, sink);
        }
    }

    /// Epoch-1 traffic generation: per-client interleaved scalar draws from
    /// one per-day substream (`Stream::Traffic`). Frozen as the reference
    /// implementation — its output is pinned byte-for-byte by
    /// `tests/determinism.rs` and must never change.
    fn simulate_day_epoch1<S: EventSink>(
        &self,
        day_index: usize,
        scratch: &mut TrafficScratch,
        sink: &mut S,
    ) {
        let day = self.config.days[day_index];
        let weekend = day.weekday().is_weekend();
        let mut rng = substream(
            self.config.seed,
            Stream::Traffic,
            cast::u64_from_usize(day_index),
        );

        // topple-lint: hot-path-begin
        for client in &self.clients {
            scratch.next_client();
            let loads = poisson(
                &mut rng,
                f64::from(client.activity) * client.day_factor(weekend),
            );
            let mobile = client.platform.is_mobile();
            let table = self.nav_tables.get(client.country, mobile, weekend);
            for _ in 0..loads {
                // Personal browsing is bursty: about a third of loads return
                // to a site already visited today (mail, feeds, forums). This
                // is what separates raw-count metrics from unique-visitor
                // metrics on the server side.
                let mut site_idx = if !scratch.today.is_empty() && chance(&mut rng, 0.35) {
                    cast::usize_from_u32(scratch.today[rng.random_range(0..scratch.today.len())])
                } else {
                    cast::usize_from_u32(table.sample(&mut rng))
                };
                // Panel selection bias: extension panelists under-visit
                // sensitive categories. Rejection-resampling (up to twice,
                // 90% each) implements the demographic skew without touching
                // the global traffic model: sensitive-category visits by
                // panelists drop to a few percent of their population rate.
                if client.alexa_panelist && self.config.mechanisms.panel_aversion {
                    for _ in 0..2 {
                        if self.sites[site_idx].category.panel_averse() && chance(&mut rng, 0.9) {
                            site_idx = cast::usize_from_u32(table.sample(&mut rng));
                        } else {
                            break;
                        }
                    }
                }
                let site = &self.sites[site_idx];

                let host_idx = cast::u8_from_usize(site.nav_host(mobile, rng.random()));
                let private_mode = chance(&mut rng, site.private_share);
                let completed = chance(&mut rng, site.completion_rate);
                let dwell_secs = if completed {
                    cast::u16_from_f64(log_normal(&mut rng, site.dwell_mu, 0.9).min(3600.0))
                } else {
                    0
                };
                let own_requests = if completed {
                    cast::u16_from_u64(poisson(&mut rng, site.subresource_mean).min(2000))
                } else {
                    cast::u16_from_u64(poisson(&mut rng, 1.0).min(10))
                };
                let total = u32::from(own_requests) + 1;
                let non200 = cast::u16_from_u64(
                    poisson(&mut rng, f64::from(total) * site.error_rate).min(u64::from(total)),
                );
                // Connection reuse: roughly one handshake per 8 requests.
                let tls_handshakes = if site.https {
                    cast::u16_from_u64(1 + poisson(&mut rng, f64::from(own_requests) / 8.0))
                } else {
                    0
                };
                let is_root_path = matches!(
                    site.hosts[usize::from(host_idx)].kind,
                    crate::site::HostKind::Apex | crate::site::HostKind::Www
                ) && chance(&mut rng, site.root_nav_share);
                let link_click = chance(&mut rng, 0.72);
                let dns_fresh = scratch.stub_fresh(site.id);
                if scratch.today.len() < 64 && !scratch.today.contains(&site.id.0) {
                    scratch.today.push(site.id.0);
                }

                sink.page_load(&PageLoad {
                    client: client.id,
                    site: site.id,
                    host_idx,
                    is_root_path,
                    link_click,
                    private_mode,
                    completed,
                    dwell_secs,
                    own_requests,
                    non200,
                    tls_handshakes,
                    dns_fresh,
                });

                // Third-party expansion (only completed loads execute embeds).
                if completed {
                    for &(dep, p) in &site.third_party {
                        if chance(&mut rng, f64::from(p)) {
                            let dep_site = &self.sites[dep.index()];
                            let requests = cast::u16_from_u64(1 + poisson(&mut rng, 2.0));
                            let non200 = cast::u16_from_u64(
                                poisson(&mut rng, f64::from(requests) * dep_site.error_rate)
                                    .min(u64::from(requests)),
                            );
                            let tls = if dep_site.https { 1 } else { 0 };
                            let fresh = scratch.stub_fresh(dep);
                            sink.third_party(&ThirdPartyFetch {
                                client: client.id,
                                site: dep,
                                host_idx: cast::u8_from_usize(dep_site.service_host(rng.random())),
                                requests,
                                non200,
                                tls_handshakes: tls,
                                dns_fresh: fresh,
                                private_mode,
                            });
                        }
                    }
                }
            }

            // Background DNS noise: a few automatic queries per device-day.
            let n_bg = poisson(&mut rng, 2.5);
            let name_count = cast::u64_from_usize(self.background_names.len());
            for _ in 0..n_bg {
                let name_idx = cast::u16_from_u64(rng.random::<u64>() % name_count);
                sink.background(&BackgroundQuery {
                    client: client.id,
                    name_idx,
                });
            }
        }
        // topple-lint: hot-path-end
    }

    /// Epoch-2 traffic generation: batched struct-of-arrays draws.
    ///
    /// Differences from epoch 1, all legalized by the epoch bump and proven
    /// distributionally equivalent by `tests/epoch_equivalence.rs`:
    ///
    /// - **Per-client substreams.** Each `(day, client)` pair derives its own
    ///   RNG (`Stream::TrafficClient`, index `day << 32 | client`), so one
    ///   client's draw count never shifts another client's stream — the
    ///   precondition for generating clients out of order or in parallel.
    /// - **Block-filled uniforms.** Raw words are filled into the scratch
    ///   [`UniformBlock`] slab-at-a-time and consumed by fixed-word-count
    ///   samplers: single-uniform Poisson inversion below `λ = 30`,
    ///   multiply-high alias and index picks, unconditional root-path coin.
    /// - **SoA tables.** Per-load attributes come from `World::soa` dense
    ///   arrays instead of the ~300-byte `Site` records; third-party
    ///   dependency lists are walked in CSR layout.
    ///
    /// Event semantics (field invariants, stub-cache behavior, revisit pool,
    /// emission order of page loads → third-party → background per client)
    /// are identical to epoch 1.
    fn simulate_day_epoch2<S: EventSink>(
        &self,
        day_index: usize,
        scratch: &mut TrafficScratch,
        sink: &mut S,
    ) {
        let day = self.config.days[day_index];
        let weekend = day.weekday().is_weekend();
        let seed = self.config.seed;
        let sites = &self.soa.sites;
        let clients = &self.soa.clients;
        let panel_aversion = self.config.mechanisms.panel_aversion;
        let name_count = cast::u64_from_usize(self.background_names.len());
        let day_key = cast::u64_from_usize(day_index) << 32;
        let TrafficScratch {
            stub_gen,
            gen,
            today,
            block,
            picks,
        } = scratch;

        // topple-lint: hot-path-begin
        for ci in 0..clients.len() {
            *gen += 1; // u64 never wraps in any feasible run
            let generation = *gen;
            today.clear();
            let client = clients.id[ci];
            let cflags = clients.flags[ci];
            let mobile = cflags & CLIENT_MOBILE != 0;
            let panelist = cflags & CLIENT_PANELIST != 0;
            let mut rng = substream(seed, Stream::TrafficClient, day_key | u64::from(client.0));
            block.reset();

            let lambda = f64::from(clients.activity[ci])
                * day_factor_for(cflags & CLIENT_ENTERPRISE != 0, weekend);
            let loads = block.take_poisson(&mut rng, lambda);
            let table = self.nav_tables.get(clients.country[ci], mobile, weekend);

            // Phase 1: batched site selection. Semantics mirror epoch 1: a
            // ~third of loads revisit today's pool, the rest draw from the
            // popularity alias table, and panelists rejection-resample
            // sensitive categories (up to twice, 90% each).
            picks.clear();
            for _ in 0..loads {
                let mut site_idx = if !today.is_empty() && block.take_chance(&mut rng, 0.35) {
                    today[block.take_index(&mut rng, today.len())]
                } else {
                    table.sample_words(block.take_word(&mut rng), block.take_word(&mut rng))
                };
                if panelist && panel_aversion {
                    for _ in 0..2 {
                        let averse =
                            sites.flags[cast::usize_from_u32(site_idx)] & SITE_PANEL_AVERSE != 0;
                        if averse && block.take_chance(&mut rng, 0.9) {
                            site_idx = table
                                .sample_words(block.take_word(&mut rng), block.take_word(&mut rng));
                        } else {
                            break;
                        }
                    }
                }
                picks.push(site_idx);
                if today.len() < 64 && !today.contains(&site_idx) {
                    today.push(site_idx);
                }
            }

            // Phase 2: per-load detail and third-party expansion over the
            // SoA attribute arrays.
            for &pick in picks.iter() {
                let s = cast::usize_from_u32(pick);
                let host_idx = sites.nav_host(s, mobile, block.take_f64(&mut rng));
                let private_mode = block.take_chance(&mut rng, f64::from(sites.private_share[s]));
                let completed = block.take_chance(&mut rng, f64::from(sites.completion[s]));
                let dwell_secs = if completed {
                    cast::u16_from_f64(
                        block
                            .take_log_normal(&mut rng, f64::from(sites.dwell_mu[s]), 0.9)
                            .min(3600.0),
                    )
                } else {
                    0
                };
                let own_requests = if completed {
                    cast::u16_from_u64(
                        block
                            .take_poisson(&mut rng, f64::from(sites.subres_mean[s]))
                            .min(2000),
                    )
                } else {
                    cast::u16_from_u64(block.take_poisson(&mut rng, 1.0).min(10))
                };
                let total = u32::from(own_requests) + 1;
                let non200 = cast::u16_from_u64(
                    block
                        .take_poisson(&mut rng, f64::from(total) * f64::from(sites.error_rate[s]))
                        .min(u64::from(total)),
                );
                // Connection reuse: roughly one handshake per 8 requests.
                let https = sites.flags[s] & SITE_HTTPS != 0;
                let tls_handshakes = if https {
                    cast::u16_from_u64(
                        1 + block.take_poisson(&mut rng, f64::from(own_requests) / 8.0),
                    )
                } else {
                    0
                };
                // The root-path coin is drawn unconditionally (epoch 1
                // short-circuits it behind the host-role test): one word per
                // load regardless of host, same conditional distribution.
                let is_root_path = sites.is_root_candidate(s, host_idx)
                    && block.take_chance(&mut rng, f64::from(sites.root_nav_share[s]));
                let link_click = block.take_chance(&mut rng, 0.72);
                let dns_fresh = stub_fresh_at(stub_gen, generation, s);

                sink.page_load(&PageLoad {
                    client,
                    site: SiteId(pick),
                    host_idx,
                    is_root_path,
                    link_click,
                    private_mode,
                    completed,
                    dwell_secs,
                    own_requests,
                    non200,
                    tls_handshakes,
                    dns_fresh,
                });

                // Third-party expansion (only completed loads execute
                // embeds), walking the CSR dependency rows.
                if completed {
                    for j in sites.tp_range(s) {
                        if block.take_chance(&mut rng, f64::from(sites.tp_prob[j])) {
                            let dep = cast::usize_from_u32(sites.tp_zone[j]);
                            let requests =
                                cast::u16_from_u64(1 + block.take_poisson(&mut rng, 2.0));
                            let non200 = cast::u16_from_u64(
                                block
                                    .take_poisson(
                                        &mut rng,
                                        f64::from(requests) * f64::from(sites.error_rate[dep]),
                                    )
                                    .min(u64::from(requests)),
                            );
                            let tls = u16::from(sites.flags[dep] & SITE_HTTPS != 0);
                            let fresh = stub_fresh_at(stub_gen, generation, dep);
                            sink.third_party(&ThirdPartyFetch {
                                client,
                                site: SiteId(sites.tp_zone[j]),
                                host_idx: sites.service_host(dep, block.take_f64(&mut rng)),
                                requests,
                                non200,
                                tls_handshakes: tls,
                                dns_fresh: fresh,
                                private_mode,
                            });
                        }
                    }
                }
            }

            // Background DNS noise: a few automatic queries per device-day.
            let n_bg = block.take_poisson(&mut rng, 2.5);
            for _ in 0..n_bg {
                let name_idx = cast::u16_from_u64(block.take_word(&mut rng) % name_count);
                sink.background(&BackgroundQuery { client, name_idx });
            }
        }
        // topple-lint: hot-path-end
    }

    /// Simulates every configured day sequentially, invoking `f` per day.
    ///
    /// Memory stays bounded at one day's traffic; for parallel consumption,
    /// call [`World::simulate_day`] from worker threads instead (days are
    /// independent).
    pub fn for_each_day<F: FnMut(&DayTraffic)>(&self, mut f: F) {
        for i in 0..self.config.days.len() {
            let t = self.simulate_day(i);
            f(&t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::taxonomy::Category;

    fn world() -> World {
        World::generate(WorldConfig::tiny(21)).unwrap()
    }

    #[test]
    fn days_are_deterministic() {
        let w = world();
        let a = w.simulate_day(0);
        let b = w.simulate_day(0);
        assert_eq!(a.page_loads.len(), b.page_loads.len());
        for (x, y) in a.page_loads.iter().zip(&b.page_loads) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.site, y.site);
            assert_eq!(x.own_requests, y.own_requests);
        }
        assert_eq!(a.third_party.len(), b.third_party.len());
    }

    /// The streaming path with a reused scratch must emit exactly the events
    /// the materialized path collects, in the per-stream order `DayTraffic`
    /// exposes — including the `dns_fresh` bits, which are the part the
    /// generation-stamped stub cache could plausibly get wrong.
    #[test]
    fn streamed_days_match_materialized_days() {
        let w = world();
        let mut scratch = TrafficScratch::for_world(&w);
        for day_index in [0, 3, 1, 3] {
            let mut sink = CollectSink::default();
            w.simulate_day_into(day_index, &mut scratch, &mut sink);
            let streamed = sink.into_day_traffic(w.config.days[day_index], day_index);
            let collected = w.simulate_day(day_index);
            assert_eq!(streamed.page_loads.len(), collected.page_loads.len());
            for (a, b) in streamed.page_loads.iter().zip(&collected.page_loads) {
                assert_eq!(
                    (a.client, a.site, a.host_idx, a.dns_fresh, a.own_requests),
                    (b.client, b.site, b.host_idx, b.dns_fresh, b.own_requests)
                );
            }
            assert_eq!(streamed.third_party.len(), collected.third_party.len());
            for (a, b) in streamed.third_party.iter().zip(&collected.third_party) {
                assert_eq!(
                    (a.client, a.site, a.dns_fresh, a.requests),
                    (b.client, b.site, b.dns_fresh, b.requests)
                );
            }
            assert_eq!(streamed.background.len(), collected.background.len());
            for (a, b) in streamed.background.iter().zip(&collected.background) {
                assert_eq!((a.client, a.name_idx), (b.client, b.name_idx));
            }
        }
    }

    #[test]
    fn days_are_independent_of_order() {
        let w = world();
        let d3_first = w.simulate_day(3);
        let _ = w.simulate_day(1);
        let d3_again = w.simulate_day(3);
        assert_eq!(d3_first.page_loads.len(), d3_again.page_loads.len());
    }

    #[test]
    fn volume_matches_activity_budget() {
        let w = world();
        let t = w.simulate_day(0);
        let expected: f64 = w
            .clients
            .iter()
            .map(|c| f64::from(c.activity) * c.day_factor(t.day.weekday().is_weekend()))
            .sum();
        let got = t.page_loads.len() as f64;
        assert!(
            (got - expected).abs() < expected * 0.1,
            "expected ~{expected} loads, got {got}"
        );
    }

    #[test]
    fn event_invariants_hold() {
        let w = world();
        let t = w.simulate_day(2);
        assert!(!t.page_loads.is_empty());
        for pl in &t.page_loads {
            let site = &w.sites[pl.site.index()];
            assert!((pl.host_idx as usize) < site.hosts.len());
            assert!(u32::from(pl.non200) <= pl.total_requests());
            if !site.https {
                assert_eq!(pl.tls_handshakes, 0);
            } else {
                assert!(pl.tls_handshakes >= 1);
            }
            if !pl.completed {
                assert_eq!(pl.dwell_secs, 0);
            }
        }
        for tp in &t.third_party {
            let site = &w.sites[tp.site.index()];
            assert!(site.is_infrastructure);
            assert!((tp.host_idx as usize) < site.hosts.len());
            assert!(tp.non200 <= tp.requests);
            assert!(tp.requests >= 1);
        }
        for bg in &t.background {
            assert!((bg.name_idx as usize) < w.background_names.len());
        }
    }

    #[test]
    fn dns_fresh_fires_exactly_once_per_zone_contact() {
        // The stub cache is shared between navigations and third-party
        // fetches: each (client, zone) pair contacted on a day produces
        // exactly one fresh upstream query across both streams.
        let w = world();
        let t = w.simulate_day(0);
        use std::collections::{HashMap, HashSet};
        let mut fresh: HashMap<(ClientId, SiteId), u32> = HashMap::new();
        let mut contacted: HashSet<(ClientId, SiteId)> = HashSet::new();
        for pl in &t.page_loads {
            contacted.insert((pl.client, pl.site));
            *fresh.entry((pl.client, pl.site)).or_default() += u32::from(pl.dns_fresh);
        }
        for tp in &t.third_party {
            contacted.insert((tp.client, tp.site));
            *fresh.entry((tp.client, tp.site)).or_default() += u32::from(tp.dns_fresh);
        }
        for key in &contacted {
            assert_eq!(fresh[key], 1, "exactly one fresh query for {key:?}");
        }
    }

    #[test]
    fn popular_sites_get_more_traffic() {
        let w = world();
        let mut counts = vec![0u32; w.sites.len()];
        let t = w.simulate_day(0);
        for pl in &t.page_loads {
            counts[pl.site.index()] += 1;
        }
        // Head sites (by generation order ≈ base rank) should dominate tail.
        let head: u32 = counts[..20].iter().sum();
        let tail: u32 = counts[counts.len() - 20..].iter().sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn weekend_shifts_category_mix() {
        let w = World::generate(WorldConfig {
            n_clients: 600,
            ..WorldConfig::tiny(22)
        })
        .unwrap();
        // Day 0 = Tue Feb 1; day 4 = Sat Feb 5.
        let weekday = w.simulate_day(0);
        let weekend = w.simulate_day(4);
        let share = |t: &DayTraffic, cat: Category| {
            let hits = t
                .page_loads
                .iter()
                .filter(|p| w.sites[p.site.index()].category == cat)
                .count();
            hits as f64 / t.page_loads.len() as f64
        };
        // Business browsing concentrates on weekdays.
        assert!(
            share(&weekday, Category::Business) > share(&weekend, Category::Business),
            "business share should drop on weekends"
        );
    }

    #[test]
    fn private_mode_tracks_category() {
        let w = World::generate(WorldConfig {
            n_clients: 800,
            ..WorldConfig::tiny(23)
        })
        .unwrap();
        let t = w.simulate_day(0);
        let (mut adult_priv, mut adult_all, mut biz_priv, mut biz_all) = (0u32, 0u32, 0u32, 0u32);
        for pl in &t.page_loads {
            match w.sites[pl.site.index()].category {
                Category::Adult => {
                    adult_all += 1;
                    adult_priv += u32::from(pl.private_mode);
                }
                Category::Business => {
                    biz_all += 1;
                    biz_priv += u32::from(pl.private_mode);
                }
                _ => {}
            }
        }
        if adult_all > 20 && biz_all > 20 {
            assert!(
                f64::from(adult_priv) / f64::from(adult_all)
                    > 3.0 * f64::from(biz_priv) / f64::from(biz_all)
            );
        }
    }
}
