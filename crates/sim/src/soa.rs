//! Struct-of-arrays projections of the world for the epoch-2 generator.
//!
//! A [`crate::site::Site`] is a ~300-byte heap-pointer-rich record (domain
//! strings, host vectors, dependency lists); the epoch-1 inner loop touches
//! a handful of scalar fields per page load and drags the rest through the
//! cache with them. These tables project exactly the fields the traffic
//! engine reads into dense parallel arrays — six probability/rate arrays, a
//! packed flag byte, host-role indices and bitmasks, and the third-party
//! dependency lists flattened CSR-style — so a load touches a few adjacent
//! cache lines instead of a scattered record. This is also the layout that
//! scales to the 10M-domain tier, where the AoS `Site` universe stops
//! fitting in memory comfortably.
//!
//! Rates are narrowed to `f32` (their generation-time precision is far
//! coarser than 1e-7 relative) — a deliberate epoch-2 distributional choice,
//! covered by the cross-epoch equivalence harness rather than byte pins.
//!
//! The projections are pure functions of the generated world: building them
//! consumes no RNG and therefore does not touch the determinism contract.

use topple_stats::cast;

use crate::client::Client;
use crate::ids::ClientId;
use crate::site::{HostKind, Site};
use crate::taxonomy::Country;

/// Sentinel for "this site has no host of that role".
pub const NO_HOST: u8 = u8::MAX;

/// Site flag bit: serves HTTPS.
pub const SITE_HTTPS: u8 = 1 << 0;
/// Site flag bit: category is under-reported by panel demographics.
pub const SITE_PANEL_AVERSE: u8 = 1 << 1;

/// Client flag bit: mobile platform.
pub const CLIENT_MOBILE: u8 = 1 << 0;
/// Client flag bit: enterprise browsing profile.
pub const CLIENT_ENTERPRISE: u8 = 1 << 1;
/// Client flag bit: carries the Alexa-style panel extension.
pub const CLIENT_PANELIST: u8 = 1 << 2;

/// Dense per-site arrays, indexed by `SiteId`.
#[derive(Debug)]
pub struct SiteSoa {
    /// Probability a page load completes.
    pub completion: Vec<f32>,
    /// Mean same-site subresource requests per completed load.
    pub subres_mean: Vec<f32>,
    /// Fraction of requests answered non-200.
    pub error_rate: Vec<f32>,
    /// Log-space mean of dwell time.
    pub dwell_mu: Vec<f32>,
    /// Fraction of visits made in a private window.
    pub private_share: Vec<f32>,
    /// Fraction of navigations landing on `/`.
    pub root_nav_share: Vec<f32>,
    /// Packed `SITE_*` flag bits.
    pub flags: Vec<u8>,
    /// Host index of the `m.` host, or [`NO_HOST`].
    pub nav_mobile: Vec<u8>,
    /// Host index of the `www.` host, or [`NO_HOST`].
    pub nav_www: Vec<u8>,
    /// Bitmask over host indices whose role is Apex or Www (root-path
    /// navigation candidates). Host counts are bounded well below 16.
    pub root_mask: Vec<u16>,
    /// Bitmask over host indices whose role is Service.
    pub svc_mask: Vec<u16>,
    /// Number of service hosts (popcount of `svc_mask`, cached).
    pub svc_count: Vec<u8>,
    /// CSR row offsets into `tp_zone`/`tp_prob`; length `n_sites + 1`.
    pub tp_offsets: Vec<u32>,
    /// Flattened third-party dependency zones.
    pub tp_zone: Vec<u32>,
    /// Flattened third-party inclusion probabilities.
    pub tp_prob: Vec<f32>,
}

impl SiteSoa {
    /// Projects the site universe into dense arrays.
    pub fn from_sites(sites: &[Site]) -> SiteSoa {
        let n = sites.len();
        let mut out = SiteSoa {
            completion: Vec::with_capacity(n),
            subres_mean: Vec::with_capacity(n),
            error_rate: Vec::with_capacity(n),
            dwell_mu: Vec::with_capacity(n),
            private_share: Vec::with_capacity(n),
            root_nav_share: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            nav_mobile: Vec::with_capacity(n),
            nav_www: Vec::with_capacity(n),
            root_mask: Vec::with_capacity(n),
            svc_mask: Vec::with_capacity(n),
            svc_count: Vec::with_capacity(n),
            tp_offsets: Vec::with_capacity(n + 1),
            tp_zone: Vec::new(),
            tp_prob: Vec::new(),
        };
        out.tp_offsets.push(0);
        for s in sites {
            out.completion.push(s.completion_rate as f32);
            out.subres_mean.push(s.subresource_mean as f32);
            out.error_rate.push(s.error_rate as f32);
            out.dwell_mu.push(s.dwell_mu as f32);
            out.private_share.push(s.private_share as f32);
            out.root_nav_share.push(s.root_nav_share as f32);
            let mut flags = 0u8;
            if s.https {
                flags |= SITE_HTTPS;
            }
            if s.category.panel_averse() {
                flags |= SITE_PANEL_AVERSE;
            }
            out.flags.push(flags);
            let (mut mobile, mut www) = (NO_HOST, NO_HOST);
            let (mut root_mask, mut svc_mask) = (0u16, 0u16);
            for (i, h) in s.hosts.iter().enumerate() {
                let bit = 1u16 << i;
                match h.kind {
                    HostKind::Apex => root_mask |= bit,
                    HostKind::Www => {
                        root_mask |= bit;
                        if www == NO_HOST {
                            www = cast::u8_from_usize(i);
                        }
                    }
                    HostKind::Mobile => {
                        if mobile == NO_HOST {
                            mobile = cast::u8_from_usize(i);
                        }
                    }
                    HostKind::Service => svc_mask |= bit,
                }
            }
            out.nav_mobile.push(mobile);
            out.nav_www.push(www);
            out.root_mask.push(root_mask);
            out.svc_mask.push(svc_mask);
            out.svc_count.push(cast::u8_from_usize(cast::usize_from_u32(
                svc_mask.count_ones(),
            )));
            for &(zone, p) in &s.third_party {
                out.tp_zone.push(zone.0);
                out.tp_prob.push(p);
            }
            out.tp_offsets.push(cast::u32_from_usize(out.tp_zone.len()));
        }
        out
    }

    /// Number of sites projected.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Navigation host for `(site, platform, coin)` — the table-driven twin
    /// of `Site::nav_host`, same semantics, no host-vector scan.
    #[inline]
    pub fn nav_host(&self, site: usize, mobile: bool, coin: f64) -> u8 {
        if mobile && self.nav_mobile[site] != NO_HOST && coin < 0.55 {
            return self.nav_mobile[site];
        }
        if self.nav_www[site] != NO_HOST && coin < 0.75 {
            self.nav_www[site]
        } else {
            0 // apex
        }
    }

    /// Service host for a third-party fetch — the twin of
    /// `Site::service_host`: picks the n-th service host uniformly by
    /// `coin`, falling back to the apex when the zone has none.
    #[inline]
    pub fn service_host(&self, site: usize, coin: f64) -> u8 {
        let n = usize::from(self.svc_count[site]);
        if n == 0 {
            return 0;
        }
        let pick = cast::floor_index(coin * n as f64, n);
        // Select the pick-th set bit of the service mask.
        let mut mask = self.svc_mask[site];
        for _ in 0..pick {
            mask &= mask - 1; // clear lowest set bit
        }
        cast::u8_from_usize(cast::usize_from_u32(mask.trailing_zeros()))
    }

    /// Whether navigating to `host_idx` can land on the root path (the host
    /// is the apex or `www`).
    #[inline]
    pub fn is_root_candidate(&self, site: usize, host_idx: u8) -> bool {
        (self.root_mask[site] >> host_idx) & 1 == 1
    }

    /// CSR range of `site`'s third-party dependencies.
    #[inline]
    pub fn tp_range(&self, site: usize) -> std::ops::Range<usize> {
        cast::usize_from_u32(self.tp_offsets[site])..cast::usize_from_u32(self.tp_offsets[site + 1])
    }
}

/// Dense per-client arrays, indexed by `ClientId`.
#[derive(Debug)]
pub struct ClientSoa {
    /// Dense ids (parallel to all other arrays).
    pub id: Vec<ClientId>,
    /// Mean page loads per day.
    pub activity: Vec<f32>,
    /// Audience country.
    pub country: Vec<Country>,
    /// Packed `CLIENT_*` flag bits.
    pub flags: Vec<u8>,
}

impl ClientSoa {
    /// Projects the client population into dense arrays.
    pub fn from_clients(clients: &[Client]) -> ClientSoa {
        let mut out = ClientSoa {
            id: Vec::with_capacity(clients.len()),
            activity: Vec::with_capacity(clients.len()),
            country: Vec::with_capacity(clients.len()),
            flags: Vec::with_capacity(clients.len()),
        };
        for c in clients {
            out.id.push(c.id);
            out.activity.push(c.activity);
            out.country.push(c.country);
            let mut flags = 0u8;
            if c.platform.is_mobile() {
                flags |= CLIENT_MOBILE;
            }
            if c.enterprise {
                flags |= CLIENT_ENTERPRISE;
            }
            if c.alexa_panelist {
                flags |= CLIENT_PANELIST;
            }
            out.flags.push(flags);
        }
        out
    }

    /// Number of clients projected.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the projection is empty.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }
}

/// Both projections, built once per world by `World::generate`.
#[derive(Debug)]
pub struct SoaTables {
    /// Per-site arrays.
    pub sites: SiteSoa,
    /// Per-client arrays.
    pub clients: ClientSoa,
}

impl SoaTables {
    /// Projects a generated world's sites and clients.
    pub fn build(sites: &[Site], clients: &[Client]) -> SoaTables {
        SoaTables {
            sites: SiteSoa::from_sites(sites),
            clients: ClientSoa::from_clients(clients),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::rng::{substream, Stream};
    use crate::world::World;
    use rand::Rng;

    #[test]
    fn projections_agree_with_the_aos_world() {
        let w = World::generate(WorldConfig::tiny(31)).expect("world generates");
        let soa = SoaTables::build(&w.sites, &w.clients);
        assert_eq!(soa.sites.len(), w.sites.len());
        assert_eq!(soa.clients.len(), w.clients.len());
        assert!(!soa.sites.is_empty() && !soa.clients.is_empty());
        let mut rng = substream(31, Stream::TrafficClient, 0);
        for (i, s) in w.sites.iter().enumerate() {
            assert_eq!(soa.sites.flags[i] & SITE_HTTPS != 0, s.https);
            assert_eq!(
                soa.sites.flags[i] & SITE_PANEL_AVERSE != 0,
                s.category.panel_averse()
            );
            assert_eq!(
                f64::from(soa.sites.completion[i]),
                // topple-lint: allow(lossy-cast): test mirrors the projection's own narrowing
                f64::from(s.completion_rate as f32)
            );
            assert_eq!(soa.sites.tp_range(i).len(), s.third_party.len());
            for (j, &(zone, p)) in s.third_party.iter().enumerate() {
                let at = soa.sites.tp_range(i).start + j;
                assert_eq!(soa.sites.tp_zone[at], zone.0);
                assert_eq!(soa.sites.tp_prob[at], p);
            }
            // Host projections replicate the scan-based pickers exactly.
            for _ in 0..8 {
                let coin: f64 = rng.random();
                for mobile in [false, true] {
                    assert_eq!(
                        usize::from(soa.sites.nav_host(i, mobile, coin)),
                        s.nav_host(mobile, coin),
                        "site {i} mobile={mobile} coin={coin}"
                    );
                }
                assert_eq!(
                    usize::from(soa.sites.service_host(i, coin)),
                    s.service_host(coin),
                    "site {i} coin={coin}"
                );
            }
            for (h, host) in s.hosts.iter().enumerate() {
                let is_root = matches!(host.kind, HostKind::Apex | HostKind::Www);
                assert_eq!(
                    soa.sites.is_root_candidate(i, cast::u8_from_usize(h)),
                    is_root
                );
            }
        }
        for (i, c) in w.clients.iter().enumerate() {
            assert_eq!(soa.clients.id[i], c.id);
            assert_eq!(soa.clients.activity[i], c.activity);
            assert_eq!(soa.clients.country[i], c.country);
            assert_eq!(
                soa.clients.flags[i] & CLIENT_MOBILE != 0,
                c.platform.is_mobile()
            );
            assert_eq!(soa.clients.flags[i] & CLIENT_ENTERPRISE != 0, c.enterprise);
            assert_eq!(
                soa.clients.flags[i] & CLIENT_PANELIST != 0,
                c.alexa_panelist
            );
        }
    }
}
