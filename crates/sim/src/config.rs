//! World configuration and scale presets.

use crate::date::Date;
use crate::rng::{DETERMINISM_EPOCH, SUPPORTED_EPOCHS};

/// Parameters of the synthetic web ecosystem.
///
/// The defaults model the paper's setting at a laptop-tractable scale; see
/// `DESIGN.md` §2 for the scale-substitution rationale. All experiments state
/// which preset they ran at.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Number of websites in the universe (the paper's ~1 M+, scaled).
    pub n_sites: usize,
    /// Number of simulated clients.
    pub n_clients: usize,
    /// Measurement window (default: February 1–28, 2022).
    pub days: Vec<Date>,
    /// Zipf exponent of ground-truth site popularity.
    pub zipf_exponent: f64,
    /// Log-space σ of multiplicative popularity noise.
    pub popularity_noise: f64,
    /// Baseline probability that a site is served by the Cloudflare-style CDN.
    pub cloudflare_share: f64,
    /// Mean page loads per client per day (log-normal across clients).
    pub mean_loads_per_day: f64,
    /// Fraction of Chrome users who opted into telemetry/history sync.
    pub chrome_optin_rate: f64,
    /// Fraction of desktop clients carrying the Alexa-style panel extension.
    pub alexa_panel_rate: f64,
    /// CrUX privacy threshold: minimum unique opted-in clients per origin and
    /// country before the origin may appear in a per-country list.
    pub crux_privacy_threshold: u32,
    /// Fraction of sites that are third-party infrastructure zones
    /// (analytics, ads, CDNs) fetched by other sites' pages.
    pub infrastructure_share: f64,
    /// Bias-mechanism toggles for counterfactual worlds (all on by default).
    pub mechanisms: Mechanisms,
    /// Worker threads for day simulation + shard construction **and** for
    /// the analysis-stage matrix fan-outs (consistency matrices, per-day
    /// list evaluation, temporal series, bias grids). `None` defers to the
    /// `TOPPLE_WORKERS` environment variable, then to the machine's
    /// available parallelism. Results are worker-count-invariant by
    /// construction (shard merges are associative and folded in day order;
    /// analysis folds collect by index); `tests/determinism.rs` pins that
    /// byte-for-byte.
    pub workers: Option<usize>,
    /// Determinism epoch to generate under: which versioned RNG draw-sequence
    /// contract the traffic engine follows (see `rng::DETERMINISM_EPOCH` for
    /// the history). `None` defers to the `TOPPLE_EPOCH` environment
    /// variable, then to the current [`DETERMINISM_EPOCH`]. Unlike
    /// [`workers`], the epoch *does* select between byte-level output
    /// universes — each epoch is individually reproducible and pinned, and
    /// epochs are distributionally equivalent (`tests/epoch_equivalence.rs`),
    /// but bytes differ across epochs.
    ///
    /// [`workers`]: WorldConfig::workers
    pub epoch: Option<u32>,
}

/// Switches for the individual bias mechanisms, enabling counterfactual
/// "what if this mechanism didn't exist" worlds (`topple-core::attribution`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// Alexa Certify score inflation.
    pub certify: bool,
    /// Private browsing (hides traffic from panels and telemetry).
    pub private_browsing: bool,
    /// Panel demographic aversion to sensitive categories.
    pub panel_aversion: bool,
    /// Per-zone DNS TTL heterogeneity at the resolvers.
    pub dns_ttl_distortion: bool,
}

impl Default for Mechanisms {
    fn default() -> Self {
        Mechanisms {
            certify: true,
            private_browsing: true,
            panel_aversion: true,
            dns_ttl_distortion: true,
        }
    }
}

impl WorldConfig {
    /// Tiny world for unit and property tests (sub-second generation).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_sites: 400,
            n_clients: 300,
            days: Date::new(2022, 2, 1).iter_days(7).collect(),
            ..WorldConfig::base()
        }
    }

    /// Small world for examples and integration tests (a few seconds).
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_sites: 4_000,
            n_clients: 2_000,
            ..WorldConfig::base()
        }
    }

    /// Medium world: the default for benchmark runs.
    pub fn medium(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_sites: 20_000,
            n_clients: 8_000,
            ..WorldConfig::base()
        }
    }

    /// Full experiment scale used by `topple-experiments` (minutes).
    pub fn paper(seed: u64) -> Self {
        WorldConfig {
            seed,
            n_sites: 100_000,
            n_clients: 30_000,
            mean_loads_per_day: 40.0,
            ..WorldConfig::base()
        }
    }

    fn base() -> Self {
        WorldConfig {
            seed: 0,
            n_sites: 0,
            n_clients: 0,
            days: Date::study_window(),
            zipf_exponent: 1.03,
            popularity_noise: 0.35,
            cloudflare_share: 0.25,
            mean_loads_per_day: 30.0,
            chrome_optin_rate: 0.35,
            alexa_panel_rate: 0.02,
            crux_privacy_threshold: 3,
            infrastructure_share: 0.004,
            mechanisms: Mechanisms::default(),
            workers: None,
            epoch: None,
        }
    }

    /// The effective determinism epoch: the explicit [`epoch`] field if set,
    /// else the `TOPPLE_EPOCH` environment variable, else the current
    /// [`DETERMINISM_EPOCH`]. Validated against [`SUPPORTED_EPOCHS`] by
    /// [`WorldConfig::validate`] (an unparsable environment value falls back
    /// to the default rather than erroring, matching `TOPPLE_WORKERS`).
    ///
    /// The environment lookup is resolved once per process: `env::var`
    /// allocates its `String` result, and the per-day generator dispatch
    /// sits inside the allocation-free ingest window.
    ///
    /// [`epoch`]: WorldConfig::epoch
    pub fn effective_epoch(&self) -> u32 {
        static ENV_EPOCH: std::sync::OnceLock<Option<u32>> = std::sync::OnceLock::new();
        self.epoch
            .or_else(|| {
                *ENV_EPOCH.get_or_init(|| {
                    std::env::var("TOPPLE_EPOCH")
                        .ok()
                        .and_then(|v| v.parse().ok())
                })
            })
            .unwrap_or(DETERMINISM_EPOCH)
    }

    /// The effective worker count for ingestion and analysis fan-outs: the
    /// explicit [`workers`] field if set, else the `TOPPLE_WORKERS`
    /// environment variable, else the machine's available parallelism —
    /// always at least 1. The knob only affects wall-clock time, never
    /// results.
    ///
    /// [`workers`]: WorldConfig::workers
    pub fn effective_workers(&self) -> usize {
        self.workers
            .or_else(|| {
                std::env::var("TOPPLE_WORKERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2)
            })
            .max(1)
    }

    /// The paper's rank magnitudes {1K, 10K, 100K, 1M} mapped onto this
    /// world's universe size: `n/1000`, `n/100`, `n/10`, `n`.
    ///
    /// Returns `(label, k)` pairs, skipping magnitudes that would round to
    /// fewer than 10 sites.
    pub fn rank_magnitudes(&self) -> Vec<(&'static str, usize)> {
        let n = self.n_sites;
        [
            ("1K", n / 1000),
            ("10K", n / 100),
            ("100K", n / 10),
            ("1M", n),
        ]
        .into_iter()
        .filter(|&(_, k)| k >= 10)
        .collect()
    }

    /// Sanity-checks parameter ranges; called by `World::generate`.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_sites < 10 {
            return Err(format!("n_sites must be ≥ 10, got {}", self.n_sites));
        }
        if self.n_clients < 10 {
            return Err(format!("n_clients must be ≥ 10, got {}", self.n_clients));
        }
        if self.days.is_empty() {
            return Err("days must be non-empty".into());
        }
        for (name, v) in [
            ("cloudflare_share", self.cloudflare_share),
            ("chrome_optin_rate", self.chrome_optin_rate),
            ("alexa_panel_rate", self.alexa_panel_rate),
            ("infrastructure_share", self.infrastructure_share),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.zipf_exponent <= 0.0 || self.mean_loads_per_day <= 0.0 {
            return Err("zipf_exponent and mean_loads_per_day must be positive".into());
        }
        let epoch = self.effective_epoch();
        if !SUPPORTED_EPOCHS.contains(&epoch) {
            return Err(format!(
                "epoch {epoch} is not supported (supported: {SUPPORTED_EPOCHS:?})"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            WorldConfig::tiny(1),
            WorldConfig::small(1),
            WorldConfig::medium(1),
            WorldConfig::paper(1),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn magnitudes_scale_with_universe() {
        let cfg = WorldConfig::paper(1);
        assert_eq!(
            cfg.rank_magnitudes(),
            vec![
                ("1K", 100),
                ("10K", 1_000),
                ("100K", 10_000),
                ("1M", 100_000)
            ]
        );
        let tiny = WorldConfig::tiny(1);
        // 400 sites: 1K bucket would be 0 sites and 10K bucket 4; both skipped.
        assert_eq!(tiny.rank_magnitudes(), vec![("100K", 40), ("1M", 400)]);
    }

    #[test]
    fn explicit_worker_count_wins_and_is_clamped() {
        let mut cfg = WorldConfig::tiny(1);
        cfg.workers = Some(5);
        assert_eq!(cfg.effective_workers(), 5);
        // Zero is nonsensical; clamp to the sequential path.
        cfg.workers = Some(0);
        assert_eq!(cfg.effective_workers(), 1);
        cfg.workers = None;
        assert!(cfg.effective_workers() >= 1);
    }

    #[test]
    fn explicit_epoch_wins_and_is_validated() {
        let mut cfg = WorldConfig::tiny(1);
        cfg.epoch = Some(1);
        assert_eq!(cfg.effective_epoch(), 1);
        assert!(cfg.validate().is_ok());
        cfg.epoch = Some(DETERMINISM_EPOCH);
        assert_eq!(cfg.effective_epoch(), DETERMINISM_EPOCH);
        assert!(cfg.validate().is_ok());
        cfg.epoch = Some(99);
        let err = cfg.validate().expect_err("unsupported epoch must fail");
        assert!(err.contains("epoch 99"), "{err}");
        // Unset: defers to TOPPLE_EPOCH / the compiled-in default; either
        // way the effective value must be a supported epoch.
        cfg.epoch = None;
        assert!(SUPPORTED_EPOCHS.contains(&cfg.effective_epoch()));
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut cfg = WorldConfig::tiny(1);
        cfg.cloudflare_share = 1.5;
        assert!(cfg.validate().is_err());
        let mut cfg = WorldConfig::tiny(1);
        cfg.n_sites = 3;
        assert!(cfg.validate().is_err());
        let mut cfg = WorldConfig::tiny(1);
        cfg.days.clear();
        assert!(cfg.validate().is_err());
    }
}
