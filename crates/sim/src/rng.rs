//! Deterministic randomness: substream derivation and sampling primitives.
//!
//! Every random decision in the simulation derives from the world seed plus a
//! purpose tag, so that (a) full runs are reproducible bit-for-bit and (b) days
//! can be simulated independently — and therefore in parallel — without sharing
//! RNG state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Version of the *current* determinism contract: the set and order of RNG
/// draws reachable from the result roots (`World::simulate_day_into`,
/// `Study::run`) under the default epoch.
///
/// Bump this whenever the draw sequence changes — adding, removing, or
/// reordering any draw site listed in the per-epoch `determinism.epoch*.toml`
/// manifests — then regenerate the manifests with `topple-lint epoch emit
/// --write` and re-pin the snapshot digests in `tests/determinism.rs`.
/// `topple-lint epoch verify` fails CI when sources and manifests disagree.
///
/// Epoch history:
/// - **1** — per-client interleaved scalar draws from one per-day substream
///   (`Stream::Traffic`). Kept alive as the reference implementation;
///   selected with `WorldConfig::epoch = Some(1)` or `TOPPLE_EPOCH=1`.
/// - **2** — batched generation from per-`(day, client)` substreams
///   (`Stream::TrafficClient`) through block-filled uniform buffers
///   (`batch::UniformBlock`) and struct-of-arrays site/client tables
///   (`soa`). Distributionally equivalent to epoch 1 (pinned by
///   `tests/epoch_equivalence.rs`), not byte-identical to it.
pub const DETERMINISM_EPOCH: u32 = 2;

/// Every epoch the runtime can still generate. `DETERMINISM_EPOCH` is always
/// the last entry; earlier entries are frozen reference implementations.
pub const SUPPORTED_EPOCHS: &[u32] = &[1, 2];

/// Domain-separation tags for RNG substreams.
///
/// Adding a new consumer of randomness means adding a tag here, keeping every
/// stream independent of insertion order elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Stream {
    /// Site attribute generation.
    Sites = 1,
    /// Client population generation.
    Clients = 2,
    /// Hyperlink graph generation.
    LinkGraph = 3,
    /// Per-day traffic; combined with the day index.
    Traffic = 4,
    /// Domain name synthesis.
    Names = 5,
    /// Third-party dependency wiring.
    ThirdParty = 6,
    /// Per-`(day, client)` traffic under epoch ≥ 2: the index packs
    /// `day << 32 | client`, making every client's day order-independent of
    /// every other client's.
    TrafficClient = 7,
}

/// Derives an independent RNG for `(seed, stream, index)`.
///
/// Uses SplitMix64 over the packed key, which is a standard way to turn
/// correlated integer keys into independent seeds.
pub fn substream(seed: u64, stream: Stream, index: u64) -> SmallRng {
    let mut z = seed
        // topple-lint: allow(lossy-cast): Stream is repr(u64); the cast reads its discriminant losslessly
        ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // Two SplitMix64 rounds.
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    SmallRng::seed_from_u64(z)
}

/// Maps one raw RNG word onto `[0, 1)` exactly the way the vendored
/// `rand::random::<f64>()` does (53 high bits → unit interval). Feeding a
/// substream's words through this yields bit-identical values to drawing
/// `f64`s from the same substream directly — the property the epoch-2
/// block-filled buffers rely on (proptested in `batch`).
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Standard-normal deviate from two unit uniforms via Box–Muller.
///
/// Pure transform shared by the scalar [`normal`] and the epoch-2 batched
/// path: same inputs, same bits out.
#[inline]
pub fn normal_from_uniforms(u1: f64, u2: f64) -> f64 {
    // Avoid ln(0) by flooring the uniform away from zero.
    let u1 = u1.max(1e-300);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Standard-normal sample via Box–Muller.
pub fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random();
    let u2: f64 = rng.random();
    normal_from_uniforms(u1, u2)
}

/// Log-normal sample with the given log-space mean and standard deviation.
pub fn log_normal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Poisson sample. Uses Knuth's product method for small `lambda` and a
/// normal approximation (continuity-corrected) for large `lambda`.
pub fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard; unreachable for lambda < 30
            }
        }
    }
    poisson_from_normal(lambda, normal(rng))
}

/// Large-`lambda` Poisson via the continuity-corrected normal approximation:
/// the pure tail of [`poisson`], shared with the epoch-2 batched path.
#[inline]
pub fn poisson_from_normal(lambda: f64, z: f64) -> u64 {
    let x = lambda + lambda.sqrt() * z + 0.5;
    if x < 0.0 {
        0
    } else {
        // topple-lint: allow(lossy-cast): x is non-negative (guarded above) and ~lambda in magnitude
        x as u64
    }
}

/// Small-`lambda` Poisson by CDF inversion of a single unit uniform.
///
/// This is the epoch-2 counterpart of [`poisson`]'s Knuth product loop: one
/// uniform instead of `~lambda` of them, same distribution (the inverse-CDF
/// of a discrete variable is exact). Only valid for `lambda < 30` — beyond
/// that `exp(-lambda)` underflows toward the f64 floor and the epoch-2 path
/// switches to [`poisson_from_normal`], exactly like the scalar sampler.
#[inline]
pub fn poisson_from_uniform(u: f64, lambda: f64) -> u64 {
    debug_assert!((0.0..30.0).contains(&lambda));
    if lambda <= 0.0 {
        return 0;
    }
    let mut p = (-lambda).exp();
    let mut cdf = p;
    let mut k = 0u64;
    while u >= cdf {
        k += 1;
        if k > 10_000 {
            return k; // numerical guard; unreachable for lambda < 30
        }
        p *= lambda / k as f64;
        cdf += p;
    }
    k
}

/// Bernoulli trial.
#[inline]
pub fn chance(rng: &mut SmallRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

/// Zipf weights `(i+1)^(-s)` for `n` items, highest first, unnormalized.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        let mut a1 = substream(42, Stream::Sites, 0);
        let mut a2 = substream(42, Stream::Sites, 0);
        let mut b = substream(42, Stream::Clients, 0);
        let mut c = substream(42, Stream::Sites, 1);
        let va1: u64 = a1.random();
        let va2: u64 = a2.random();
        let vb: u64 = b.random();
        let vc: u64 = c.random();
        assert_eq!(va1, va2);
        assert_ne!(va1, vb);
        assert_ne!(va1, vc);
    }

    #[test]
    fn normal_moments() {
        let mut rng = substream(7, Stream::Traffic, 0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut rng = substream(9, Stream::Traffic, 1);
        let lambda = 4.5;
        let n = 100_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_moments_large_lambda() {
        let mut rng = substream(9, Stream::Traffic, 2);
        let lambda = 120.0;
        let n = 50_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = substream(9, Stream::Traffic, 3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn log_normal_median() {
        let mut rng = substream(11, Stream::Traffic, 4);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 2.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // Median of log-normal = e^mu.
        assert!((median - 2.0f64.exp()).abs() < 0.2, "median {median}");
    }

    #[test]
    fn poisson_large_lambda_variance_and_floor() {
        // The normal-approximation branch must keep the second moment, not
        // just the mean, and its continuity correction must never produce a
        // negative count even deep in the left tail.
        let mut rng = substream(13, Stream::Traffic, 5);
        let lambda = 250.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                // topple-lint: allow(lossy-cast): counts ~lambda fit f64 exactly
                poisson(&mut rng, lambda) as f64
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / f64::from(n);
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
        assert!((var / lambda - 1.0).abs() < 0.05, "variance {var}");
        assert_eq!(poisson_from_normal(1.0, -100.0), 0, "tail must clamp at 0");
    }

    #[test]
    fn log_normal_sigma_zero_is_deterministic_exp_mu() {
        // σ → 0 collapses the distribution to the point mass e^mu; the
        // sampler must still consume its normal draw (the epoch contract
        // fixes the draw sequence regardless of parameter values).
        let mut rng = substream(14, Stream::Traffic, 6);
        for _ in 0..1000 {
            let x = log_normal(&mut rng, 3.0, 0.0);
            assert!((x - 3.0f64.exp()).abs() < 1e-12, "got {x}");
        }
    }

    #[test]
    fn normal_tail_bounds() {
        // Box–Muller over 53-bit uniforms is bounded: |z| <= sqrt(-2 ln u1)
        // with u1 floored at 1e-300, so ~37.2 absolute worst case. Over 2e5
        // draws the empirical max should sit in the (3.8, 7.5) band —
        // reaching genuine tail values without ever exceeding what the
        // uniform resolution allows.
        let mut rng = substream(15, Stream::Traffic, 7);
        let max_abs = (0..200_000)
            .map(|_| normal(&mut rng).abs())
            .fold(0.0f64, f64::max);
        assert!(max_abs > 3.8, "tails never reached: max |z| = {max_abs}");
        assert!(max_abs < 7.5, "implausible outlier: max |z| = {max_abs}");
    }

    #[test]
    fn poisson_inversion_matches_product_method_moments() {
        // Same distribution from one uniform (epoch 2) as from Knuth's
        // product loop (epoch 1), checked on mean and variance.
        let mut rng = substream(16, Stream::Traffic, 8);
        let lambda = 6.5;
        let n = 100_000;
        let inv: Vec<f64> = (0..n)
            .map(|_| {
                // topple-lint: allow(lossy-cast): small counts fit f64 exactly
                poisson_from_uniform(rng.random(), lambda) as f64
            })
            .collect();
        let mean = inv.iter().sum::<f64>() / f64::from(n);
        let var = inv.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var / lambda - 1.0).abs() < 0.05, "variance {var}");
        assert_eq!(poisson_from_uniform(0.0, 5.0), 0, "u=0 is the CDF floor");
        assert_eq!(poisson_from_uniform(0.5, 0.0), 0, "λ=0 degenerates to 0");
    }

    #[test]
    fn unit_f64_matches_vendored_uniform_bits() {
        // The word→f64 map must be bit-identical to random::<f64>() on the
        // same substream; this is what lets the epoch-2 block buffer replay
        // the scalar uniform stream exactly.
        let mut words = substream(17, Stream::TrafficClient, 9);
        let mut direct = substream(17, Stream::TrafficClient, 9);
        for _ in 0..1000 {
            let w: u64 = words.random();
            let f: f64 = direct.random();
            assert_eq!(unit_f64(w).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn epoch_constants_are_consistent() {
        assert_eq!(SUPPORTED_EPOCHS.last(), Some(&DETERMINISM_EPOCH));
        assert!(SUPPORTED_EPOCHS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zipf_weights_shape() {
        let w = zipf_weights(100, 1.0);
        assert_eq!(w.len(), 100);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }
}
