//! Deterministic randomness: substream derivation and sampling primitives.
//!
//! Every random decision in the simulation derives from the world seed plus a
//! purpose tag, so that (a) full runs are reproducible bit-for-bit and (b) days
//! can be simulated independently — and therefore in parallel — without sharing
//! RNG state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Version of the determinism contract: the set and order of RNG draws
/// reachable from the result roots (`World::simulate_day_into`, `Study::run`).
///
/// Bump this whenever the draw sequence changes — adding, removing, or
/// reordering any draw site listed in `determinism.epoch.toml` — then
/// regenerate the manifest with `topple-lint epoch emit --write` and re-pin
/// the snapshot digest in `tests/determinism.rs`. `topple-lint epoch verify`
/// fails CI when sources and manifest disagree.
pub const DETERMINISM_EPOCH: u32 = 1;

/// Domain-separation tags for RNG substreams.
///
/// Adding a new consumer of randomness means adding a tag here, keeping every
/// stream independent of insertion order elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Stream {
    /// Site attribute generation.
    Sites = 1,
    /// Client population generation.
    Clients = 2,
    /// Hyperlink graph generation.
    LinkGraph = 3,
    /// Per-day traffic; combined with the day index.
    Traffic = 4,
    /// Domain name synthesis.
    Names = 5,
    /// Third-party dependency wiring.
    ThirdParty = 6,
}

/// Derives an independent RNG for `(seed, stream, index)`.
///
/// Uses SplitMix64 over the packed key, which is a standard way to turn
/// correlated integer keys into independent seeds.
pub fn substream(seed: u64, stream: Stream, index: u64) -> SmallRng {
    let mut z = seed
        // topple-lint: allow(lossy-cast): Stream is repr(u64); the cast reads its discriminant losslessly
        ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // Two SplitMix64 rounds.
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    SmallRng::seed_from_u64(z)
}

/// Standard-normal sample via Box–Muller.
pub fn normal(rng: &mut SmallRng) -> f64 {
    // Avoid ln(0) by flooring the uniform away from zero.
    let u1: f64 = rng.random::<f64>().max(1e-300);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Log-normal sample with the given log-space mean and standard deviation.
pub fn log_normal(rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * normal(rng)).exp()
}

/// Poisson sample. Uses Knuth's product method for small `lambda` and a
/// normal approximation (continuity-corrected) for large `lambda`.
pub fn poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    debug_assert!(lambda >= 0.0);
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard; unreachable for lambda < 30
            }
        }
    }
    let x = lambda + lambda.sqrt() * normal(rng) + 0.5;
    if x < 0.0 {
        0
    } else {
        // topple-lint: allow(lossy-cast): x is non-negative (guarded above) and ~lambda in magnitude
        x as u64
    }
}

/// Bernoulli trial.
#[inline]
pub fn chance(rng: &mut SmallRng, p: f64) -> bool {
    rng.random::<f64>() < p
}

/// Zipf weights `(i+1)^(-s)` for `n` items, highest first, unnormalized.
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|i| ((i + 1) as f64).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        let mut a1 = substream(42, Stream::Sites, 0);
        let mut a2 = substream(42, Stream::Sites, 0);
        let mut b = substream(42, Stream::Clients, 0);
        let mut c = substream(42, Stream::Sites, 1);
        let va1: u64 = a1.random();
        let va2: u64 = a2.random();
        let vb: u64 = b.random();
        let vc: u64 = c.random();
        assert_eq!(va1, va2);
        assert_ne!(va1, vb);
        assert_ne!(va1, vc);
    }

    #[test]
    fn normal_moments() {
        let mut rng = substream(7, Stream::Traffic, 0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut rng = substream(9, Stream::Traffic, 1);
        let lambda = 4.5;
        let n = 100_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_moments_large_lambda() {
        let mut rng = substream(9, Stream::Traffic, 2);
        let lambda = 120.0;
        let n = 50_000;
        let mean = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = substream(9, Stream::Traffic, 3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn log_normal_median() {
        let mut rng = substream(11, Stream::Traffic, 4);
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 2.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        // Median of log-normal = e^mu.
        assert!((median - 2.0f64.exp()).abs() < 0.2, "median {median}");
    }

    #[test]
    fn zipf_weights_shape() {
        let w = zipf_weights(100, 1.0);
        assert_eq!(w.len(), 100);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }
}
