//! The synthetic hyperlink graph.
//!
//! Majestic ranks sites by *backlinks* — distinct referring domains — and the
//! paper finds that link counts correlate only weakly with traffic and skew
//! hard toward institutions (government, news, travel) while missing adult,
//! gambling, and abuse content. The generator encodes exactly those
//! mechanisms: link targets are sampled by `popularity^α × link_propensity`,
//! so a mid-traffic government portal out-collects a high-traffic adult site.
//!
//! Storage is CSR (compressed sparse rows) over source sites, which the
//! crawler vantage walks edge-by-edge.

use rand::Rng;
use topple_stats::cast;

use crate::alias::AliasTable;
use crate::ids::SiteId;
use crate::rng::{poisson, substream, Stream};
use crate::site::Site;

/// The link graph in CSR form plus per-target counts.
#[derive(Debug, Clone)]
pub struct LinkGraph {
    /// CSR row offsets: out-edges of site `s` are `targets[offsets[s]..offsets[s+1]]`.
    offsets: Vec<u32>,
    /// Flattened out-link targets.
    targets: Vec<u32>,
}

/// Sub-linear exponent tying link volume to popularity: links accrue with
/// popularity but much less than proportionally.
const POPULARITY_EXPONENT: f64 = 0.45;

impl LinkGraph {
    /// Generates the graph for a site universe.
    ///
    /// `mean_outlinks` is the Poisson mean of distinct outbound links per
    /// *public* site (non-public sites neither give nor effectively receive
    /// public links).
    pub fn generate(seed: u64, sites: &[Site], mean_outlinks: f64) -> Self {
        let n = sites.len();
        let mut rng = substream(seed, Stream::LinkGraph, 0);
        // Target attractiveness: sub-linear in popularity, scaled by the
        // category's link propensity; non-public sites are near-invisible.
        let weights: Vec<f64> = sites
            .iter()
            .map(|s| {
                let vis = if s.public_web { 1.0 } else { 0.02 };
                s.weight.powf(POPULARITY_EXPONENT) * s.category.link_propensity() * vis
            })
            .collect();
        let table = AliasTable::new(&weights);

        let mut offsets = Vec::with_capacity(n + 1);
        // topple-lint: allow(lossy-cast): capacity hint only; truncation cannot affect contents
        let mut targets: Vec<u32> = Vec::with_capacity((n as f64 * mean_outlinks) as usize);
        offsets.push(0u32);
        for site in sites {
            if site.public_web {
                // Bigger sites host more pages and thus more outbound links.
                let scale = (site.weight.powf(0.25)).clamp(0.4, 4.0);
                let degree = poisson(&mut rng, mean_outlinks * scale);
                for _ in 0..degree {
                    let mut t = table.sample(&mut rng);
                    // Avoid trivial self-links.
                    if t == site.id.0 {
                        t = table.sample(&mut rng);
                    }
                    if t != site.id.0 {
                        targets.push(t);
                    }
                }
            }
            offsets.push(cast::u32_from_usize(targets.len()));
        }
        let _ = rng.random::<u64>();
        LinkGraph { offsets, targets }
    }

    /// Number of sites the graph covers.
    pub fn site_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total directed edges (with multiplicity).
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Out-links of a site (with multiplicity — one entry per linking page).
    pub fn out_links(&self, s: SiteId) -> &[u32] {
        let lo = cast::usize_from_u32(self.offsets[s.index()]);
        let hi = cast::usize_from_u32(self.offsets[s.index() + 1]);
        &self.targets[lo..hi]
    }

    /// Full-graph in-degree (backlink pages) per site.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.site_count()];
        for &t in &self.targets {
            deg[cast::usize_from_u32(t)] += 1;
        }
        deg
    }

    /// Full-graph count of distinct referring domains per site.
    pub fn referring_domains(&self) -> Vec<u32> {
        let n = self.site_count();
        let mut counts = vec![0u32; n];
        let mut seen: Vec<u32> = vec![u32::MAX; n]; // last source seen per target
        for s in 0..n {
            let lo = cast::usize_from_u32(self.offsets[s]);
            let hi = cast::usize_from_u32(self.offsets[s + 1]);
            let s32 = cast::u32_from_usize(s);
            for &t in &self.targets[lo..hi] {
                let ti = cast::usize_from_u32(t);
                if seen[ti] != s32 {
                    seen[ti] = s32;
                    counts[ti] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny(77)).unwrap()
    }

    #[test]
    fn csr_shape_is_consistent() {
        let w = tiny_world();
        let g = &w.link_graph;
        assert_eq!(g.site_count(), w.sites.len());
        let total: usize = (0..w.sites.len())
            .map(|i| g.out_links(SiteId(i as u32)).len())
            .sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn no_self_links() {
        let w = tiny_world();
        for (i, _) in w.sites.iter().enumerate() {
            for &t in w.link_graph.out_links(SiteId(i as u32)) {
                assert_ne!(t as usize, i, "self-link at {i}");
            }
        }
    }

    #[test]
    fn referring_domains_bounded_by_in_degree() {
        let w = tiny_world();
        let refs = w.link_graph.referring_domains();
        let degs = w.link_graph.in_degrees();
        for (r, d) in refs.iter().zip(&degs) {
            assert!(r <= d);
        }
    }

    #[test]
    fn institutions_outcollect_grey_content() {
        // Aggregate in-degree per category: government should beat adult by a
        // wide margin per site even though adult sites get more traffic.
        use crate::taxonomy::Category;
        let w = World::generate(WorldConfig::small(3)).unwrap();
        let refs = w.link_graph.referring_domains();
        let mean_for = |cat: Category| {
            let mut sum = 0.0;
            let mut n = 0.0;
            for s in &w.sites {
                if s.category == cat {
                    sum += refs[s.id.index()] as f64;
                    n += 1.0;
                }
            }
            if n == 0.0 {
                0.0
            } else {
                sum / n
            }
        };
        let gov = mean_for(Category::Government);
        let adult = mean_for(Category::Adult);
        assert!(
            gov > adult * 3.0,
            "government sites should be link-rich: gov={gov:.2}, adult={adult:.2}"
        );
    }

    #[test]
    fn non_public_sites_rarely_linked() {
        let w = World::generate(WorldConfig::small(4)).unwrap();
        let refs = w.link_graph.referring_domains();
        let (mut pub_sum, mut pub_n, mut priv_sum, mut priv_n) = (0.0, 0.0, 0.0, 0.0);
        for s in &w.sites {
            if s.public_web {
                pub_sum += refs[s.id.index()] as f64;
                pub_n += 1.0;
            } else {
                priv_sum += refs[s.id.index()] as f64;
                priv_n += 1.0;
            }
        }
        assert!(priv_n > 0.0, "tiny world should include non-public sites");
        assert!(pub_sum / pub_n > 5.0 * (priv_sum / priv_n).max(0.01));
    }
}
