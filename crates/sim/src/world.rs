//! World generation: the complete synthetic web ecosystem.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::Rng;
use topple_psl::{DomainName, PublicSuffixList};
use topple_stats::cast;

use crate::alias::AliasTable;
use crate::client::{Client, Resolver};
use crate::config::WorldConfig;
use crate::ids::{ClientId, SiteId};
use crate::linkgraph::LinkGraph;
use crate::namegen::NameGenerator;
use crate::rng::{chance, log_normal, substream, zipf_weights, Stream};
use crate::site::{HostKind, Site, SiteHost};
use crate::soa::SoaTables;
use crate::taxonomy::{Browser, Category, Country, Platform};

/// Error produced by world generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldError(pub String);

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "world generation failed: {}", self.0)
    }
}

impl std::error::Error for WorldError {}

/// Navigation alias tables indexed by (country, mobile?, weekend?).
#[derive(Debug, Clone)]
pub(crate) struct NavTables {
    tables: Vec<AliasTable>, // COUNTRY_COUNT * 2 * 2
}

impl NavTables {
    fn idx(country: Country, mobile: bool, weekend: bool) -> usize {
        country.index() * 4 + usize::from(mobile) * 2 + usize::from(weekend)
    }

    pub(crate) fn get(&self, country: Country, mobile: bool, weekend: bool) -> &AliasTable {
        &self.tables[Self::idx(country, mobile, weekend)]
    }
}

/// The complete generated world: sites, clients, link graph, and samplers.
#[derive(Debug)]
pub struct World {
    /// The configuration the world was generated from.
    pub config: WorldConfig,
    /// The Public Suffix List in force.
    pub psl: PublicSuffixList,
    /// All websites, in descending ground-truth base-rank order (site 0 drew
    /// the largest Zipf weight before noise).
    pub sites: Vec<Site>,
    /// The client population.
    pub clients: Vec<Client>,
    /// The hyperlink graph.
    pub link_graph: LinkGraph,
    /// Non-website names queried by background jobs (TLD probes, NTP,
    /// connectivity checks). These pollute DNS-derived lists.
    pub background_names: Vec<DomainName>,
    pub(crate) nav_tables: NavTables,
    /// Struct-of-arrays projections of sites and clients for the epoch-2
    /// generator. A pure function of the fields above — rebuilding it never
    /// consumes RNG.
    pub(crate) soa: SoaTables,
    domain_index: HashMap<String, SiteId>,
}

impl World {
    /// Generates a world from a configuration. Deterministic in `config.seed`.
    pub fn generate(config: WorldConfig) -> Result<World, WorldError> {
        config.validate().map_err(WorldError)?;
        let psl = PublicSuffixList::builtin();
        let sites = generate_sites(&config);
        let clients = generate_clients(&config);
        let link_graph = LinkGraph::generate(config.seed, &sites, 10.0);
        let nav_tables = build_nav_tables(&sites);
        let background_names = background_names();
        let soa = SoaTables::build(&sites, &clients);
        let mut domain_index = HashMap::with_capacity(sites.len());
        for s in &sites {
            domain_index.insert(s.domain.as_str().to_owned(), s.id);
        }
        Ok(World {
            config,
            psl,
            sites,
            clients,
            link_graph,
            background_names,
            nav_tables,
            soa,
            domain_index,
        })
    }

    /// Looks up a site by registrable domain.
    pub fn site_by_domain(&self, domain: &DomainName) -> Option<&Site> {
        self.domain_index
            .get(domain.as_str())
            .map(|id| &self.sites[id.index()])
    }

    /// Whether a registrable domain is served by the Cloudflare-style CDN.
    ///
    /// This models the paper's `HTTP HEAD` probe for the `cf_ray` response
    /// header (Section 4.3): the check is made against the *domain*, exactly
    /// as the probe would observe it, without consulting popularity data.
    pub fn is_cloudflare(&self, domain: &DomainName) -> bool {
        self.site_by_domain(domain)
            .map(|s| s.cloudflare)
            .unwrap_or(false)
    }

    /// Ground-truth top-k site ids by true weight (for framework validation
    /// tests only — no vantage or list construction may touch this).
    pub fn ground_truth_top(&self, k: usize) -> Vec<SiteId> {
        let mut ids: Vec<SiteId> = self.sites.iter().map(|s| s.id).collect();
        ids.sort_by(|a, b| {
            self.sites[b.index()]
                .weight
                .total_cmp(&self.sites[a.index()].weight)
        });
        ids.truncate(k);
        ids
    }
}

/// Generates the site universe in base-rank order.
fn generate_sites(config: &WorldConfig) -> Vec<Site> {
    let n = config.n_sites;
    let mut rng = substream(config.seed, Stream::Sites, 0);
    let mut name_rng = substream(config.seed, Stream::Names, 0);
    let mut names = NameGenerator::new();

    let cat_weights: Vec<f64> = Category::ALL.iter().map(|c| c.universe_share()).collect();
    let cat_table = AliasTable::new(&cat_weights);
    let country_weights: Vec<f64> = Country::ALL.iter().map(|c| c.population_share()).collect();
    let country_table = AliasTable::new(&country_weights);

    let base_weights = zipf_weights(n, config.zipf_exponent);
    let mut sites = Vec::with_capacity(n);
    for (i, &base_weight) in base_weights.iter().enumerate() {
        let category = Category::ALL[cast::usize_from_u32(cat_table.sample(&mut rng))];
        let home_country = Country::ALL[cast::usize_from_u32(country_table.sample(&mut rng))];
        // Strongly local ecosystems produce fewer globally-oriented sites.
        let global_rate = 0.30 * (1.0 - home_country.locality()).max(0.15) / 0.45;
        let is_global = chance(&mut rng, global_rate);
        let domain = names.mint(&mut name_rng, category, home_country, is_global);

        let weight = base_weight
            * category.popularity_damping()
            * log_normal(&mut rng, 0.0, config.popularity_noise);
        let country_mix = country_mix(home_country, is_global, &mut rng);

        // Category mobile affinity with a little per-site jitter.
        let mobile_affinity =
            (category.mobile_affinity() * log_normal(&mut rng, 0.0, 0.15)).clamp(0.3, 1.8);

        let https = chance(
            &mut rng,
            if matches!(category, Category::Parked | Category::Abuse) {
                0.55
            } else {
                0.93
            },
        );

        // CDN adoption: never the global top 10 (none of the web's top ten
        // sites use Cloudflare), mild category skew elsewhere.
        let cf_factor = match category {
            Category::Technology | Category::Blog | Category::Gaming => 1.25,
            Category::Adult | Category::Gambling => 1.15,
            Category::Government | Category::Education => 0.45,
            Category::Finance => 0.7,
            _ => 1.0,
        };
        let cloudflare =
            i >= 10 && chance(&mut rng, (config.cloudflare_share * cf_factor).min(0.9));

        let public_web = chance(&mut rng, category.public_web_rate());
        let completion_rate = match category {
            Category::Parked | Category::Abuse => 0.55,
            _ => 0.82 + 0.12 * rng.random::<f64>(),
        };
        let subresource_mean =
            (category.subresource_mean() * log_normal(&mut rng, 0.0, 0.35)).clamp(0.5, 150.0);
        let error_rate = 0.02 + 0.08 * rng.random::<f64>();
        let dwell_mu = category.dwell_mean_secs().ln() - 0.32; // median below mean
        let private_noise = log_normal(&mut rng, 0.0, 0.2);
        let private_share = if config.mechanisms.private_browsing {
            (category.private_mode_share() * private_noise).min(0.95)
        } else {
            0.0
        };
        let root_nav_share = match category {
            Category::News | Category::Blog | Category::Community => {
                0.25 + 0.15 * rng.random::<f64>()
            }
            Category::Parked => 0.9,
            _ => 0.40 + 0.25 * rng.random::<f64>(),
        };

        let hosts = build_hosts(&domain, category, &mut rng);
        let is_infrastructure = chance(&mut rng, config.infrastructure_share)
            && matches!(category, Category::Technology | Category::Business);
        // Alexa Certify adoption: commercially-motivated mid-tail sites buy
        // direct measurement and rank better than panel sampling would place
        // them. Never the true giants (they don't need it).
        let certify_rate = match category {
            Category::Business | Category::Shopping | Category::News | Category::Travel => 0.08,
            Category::Parked | Category::Abuse | Category::Adult => 0.0,
            _ => 0.025,
        };
        // Draw unconditionally so counterfactual worlds (mechanism toggles)
        // consume identical RNG streams and differ only in the mechanism.
        let certify_drawn = chance(&mut rng, certify_rate);
        let certify_factor = log_normal(&mut rng, 2.0, 0.7).clamp(2.0, 120.0);
        let certify_boost = if config.mechanisms.certify && i >= 50 && certify_drawn {
            certify_factor
        } else {
            1.0
        };

        sites.push(Site {
            id: SiteId(cast::u32_from_usize(i)),
            domain,
            category,
            home_country,
            is_global,
            weight,
            country_mix,
            mobile_affinity,
            https,
            cloudflare,
            public_web,
            completion_rate,
            subresource_mean,
            error_rate,
            dwell_mu,
            private_share,
            root_nav_share,
            hosts,
            third_party: Vec::new(),
            is_infrastructure,
            certify_boost,
        });
    }

    // Force a handful of infrastructure zones among popular technology sites
    // so that small worlds have them too.
    // topple-lint: allow(lossy-cast): share is in [0, 1], so the product is bounded by n
    let needed = (config.infrastructure_share * n as f64).ceil() as usize;
    let have = sites.iter().filter(|s| s.is_infrastructure).count();
    if have < needed.max(3) {
        let mut added = have;
        for site in sites.iter_mut().skip(10) {
            if added >= needed.max(3) {
                break;
            }
            if matches!(site.category, Category::Technology | Category::Business)
                && !site.is_infrastructure
            {
                site.is_infrastructure = true;
                added += 1;
            }
        }
    }

    wire_third_parties(config, &mut sites);
    sites
}

/// Audience mix over countries for a site.
fn country_mix(home: Country, is_global: bool, rng: &mut SmallRng) -> [f64; Country::COUNT] {
    let locality = if is_global { 0.06 } else { home.locality() };
    let mut mix = [0.0; Country::COUNT];
    for c in Country::ALL {
        let base = c.population_share();
        let mut v = (1.0 - locality) * base;
        // Cross-border damping into strongly-local ecosystems: foreign sites
        // reach China/Japan audiences weakly.
        if c != home {
            v *= 1.0 - 0.85 * c.locality().max(0.0).powi(2);
            // The Chinese ecosystem is additionally walled off: most foreign
            // sites are simply unreachable, so the resolver behind Secrank
            // observes an almost purely domestic web.
            if c == Country::China {
                v *= 0.25;
            }
        }
        // Per-site noise so mixes aren't identical within a class.
        v *= log_normal(rng, 0.0, 0.25);
        mix[c.index()] = v;
    }
    mix[home.index()] += locality;
    let total: f64 = mix.iter().sum();
    for v in &mut mix {
        *v /= total;
    }
    mix
}

/// Builds the FQDN set of a site.
fn build_hosts(domain: &DomainName, category: Category, rng: &mut SmallRng) -> Vec<SiteHost> {
    let mut hosts = vec![SiteHost {
        name: domain.clone(),
        kind: HostKind::Apex,
    }];
    let push = |label: &str, kind: HostKind, hosts: &mut Vec<SiteHost>| {
        if let Ok(name) = domain.prepend(label) {
            hosts.push(SiteHost { name, kind });
        }
    };
    if chance(rng, 0.85) {
        push("www", HostKind::Www, &mut hosts);
    }
    if chance(rng, 0.35) {
        push("m", HostKind::Mobile, &mut hosts);
    }
    for (label, p) in [
        ("cdn", 0.35),
        ("static", 0.25),
        ("api", 0.30),
        ("img", 0.15),
    ] {
        if chance(rng, p) {
            push(label, HostKind::Service, &mut hosts);
        }
    }
    if category == Category::Shopping && chance(rng, 0.4) {
        push("checkout", HostKind::Service, &mut hosts);
    }
    hosts
}

/// Wires third-party infrastructure dependencies into every non-infra site.
fn wire_third_parties(config: &WorldConfig, sites: &mut [Site]) {
    let infra: Vec<SiteId> = sites
        .iter()
        .filter(|s| s.is_infrastructure)
        .map(|s| s.id)
        .collect();
    if infra.is_empty() {
        return;
    }
    let mut rng = substream(config.seed, Stream::ThirdParty, 0);
    // Popular infrastructure wins embeds (analytics-market concentration).
    let infra_weights: Vec<f64> = infra
        .iter()
        .map(|id| sites[id.index()].weight.powf(0.6))
        .collect();
    let table = AliasTable::new(&infra_weights);
    for (i, site) in sites.iter_mut().enumerate() {
        if site.is_infrastructure || site.category == Category::Parked {
            continue;
        }
        let deps = 1 + cast::floor_index(rng.random::<f64>() * 4.0, 4); // 1..=4
        let mut chosen: Vec<(SiteId, f32)> = Vec::with_capacity(deps);
        for _ in 0..deps {
            let dep = infra[cast::usize_from_u32(table.sample(&mut rng))];
            if dep.index() != i && !chosen.iter().any(|(d, _)| *d == dep) {
                let p = 0.4 + 0.55 * rng.random::<f32>();
                chosen.push((dep, p));
            }
        }
        site.third_party = chosen;
    }
}

/// Generates the client population.
fn generate_clients(config: &WorldConfig) -> Vec<Client> {
    let mut rng = substream(config.seed, Stream::Clients, 0);
    let country_weights: Vec<f64> = Country::ALL.iter().map(|c| c.population_share()).collect();
    let country_table = AliasTable::new(&country_weights);

    let mut clients = Vec::with_capacity(config.n_clients);
    for i in 0..config.n_clients {
        let country = Country::ALL[cast::usize_from_u32(country_table.sample(&mut rng))];
        let mobile = chance(&mut rng, country.mobile_share());
        let platform = if mobile {
            if chance(&mut rng, ios_share(country)) {
                Platform::Ios
            } else {
                Platform::Android
            }
        } else if chance(&mut rng, 0.12) {
            Platform::MacOs
        } else if chance(&mut rng, 0.06) {
            Platform::Other
        } else {
            Platform::Windows
        };
        let browser = pick_browser(&mut rng, platform, country);
        let enterprise = !mobile && chance(&mut rng, country.enterprise_rate());
        let resolver = pick_resolver(&mut rng, country, enterprise, mobile);
        let activity = log_normal(&mut rng, config.mean_loads_per_day.ln() - 0.25, 0.7)
            .clamp(1.0, 400.0) as f32;
        let ip = assign_ip(&mut rng, country, enterprise, cast::u32_from_usize(i));
        let chrome_optin = browser == Browser::Chrome && chance(&mut rng, config.chrome_optin_rate);
        // The panel is desktop-only and strongly geographically skewed: the
        // partnered extensions are overwhelmingly installed in the US and
        // western Europe, and essentially absent in China.
        let geo_factor = match country {
            Country::UnitedStates => 2.6,
            Country::UnitedKingdom | Country::Germany => 1.6,
            Country::China => 0.02,
            Country::Japan => 0.4,
            _ => 0.5,
        };
        let panel_rate = if platform.is_mobile() {
            0.0
        } else {
            config.alexa_panel_rate * geo_factor * if enterprise { 0.7 } else { 1.4 }
        };
        let alexa_panelist = browser != Browser::Automation && chance(&mut rng, panel_rate);

        clients.push(Client {
            id: ClientId(cast::u32_from_usize(i)),
            country,
            platform,
            browser,
            ip,
            enterprise,
            activity,
            resolver,
            chrome_optin,
            alexa_panelist,
        });
    }
    clients
}

fn ios_share(country: Country) -> f64 {
    match country {
        Country::UnitedStates => 0.52,
        Country::Japan => 0.60,
        Country::UnitedKingdom => 0.48,
        Country::Germany => 0.36,
        Country::China => 0.24,
        Country::Brazil => 0.16,
        Country::India => 0.05,
        Country::Indonesia => 0.12,
        Country::Nigeria => 0.06,
        Country::Egypt => 0.10,
        Country::SouthAfrica => 0.14,
        Country::Rest => 0.20,
    }
}

fn pick_browser(rng: &mut SmallRng, platform: Platform, country: Country) -> Browser {
    // Small automation share on desktop platforms.
    if !platform.is_mobile() && chance(rng, 0.04) {
        return Browser::Automation;
    }
    let r: f64 = rng.random();
    match platform {
        Platform::Ios => {
            if r < 0.72 {
                Browser::Safari
            } else if r < 0.94 {
                Browser::Chrome
            } else {
                Browser::OtherBrowser
            }
        }
        Platform::Android => {
            if r < 0.66 {
                Browser::Chrome
            } else if r < 0.84 {
                Browser::Samsung
            } else if r < 0.92 {
                Browser::Firefox
            } else {
                Browser::OtherBrowser
            }
        }
        Platform::MacOs => {
            if r < 0.42 {
                Browser::Safari
            } else if r < 0.84 {
                Browser::Chrome
            } else if r < 0.93 {
                Browser::Firefox
            } else {
                Browser::OtherBrowser
            }
        }
        _ => {
            // Windows / Other desktop; China has a larger long-tail share.
            let other = if country == Country::China {
                0.22
            } else {
                0.08
            };
            if r < other {
                Browser::OtherBrowser
            } else if r < other + 0.58 {
                Browser::Chrome
            } else if r < other + 0.74 {
                Browser::Edge
            } else {
                Browser::Firefox
            }
        }
    }
}

fn pick_resolver(rng: &mut SmallRng, country: Country, enterprise: bool, mobile: bool) -> Resolver {
    if country == Country::China {
        return if chance(rng, 0.72) {
            Resolver::ChinaVoting
        } else {
            Resolver::Isp
        };
    }
    // Umbrella's base is managed desktop fleets behind shared egress NAT;
    // consumer desktops rarely and phones on mobile networks essentially
    // never route through it. The NAT sharing saturates unique-client-IP
    // counts for popular names, which is what destroys the list's
    // fine-grained rank fidelity.
    let p = if enterprise {
        country.umbrella_enterprise_rate()
    } else if mobile {
        0.001
    } else {
        0.02
    };
    if chance(rng, p) {
        Resolver::Umbrella
    } else {
        Resolver::Isp
    }
}

/// Assigns a post-NAT IPv4 address: country-partitioned /8-style blocks;
/// enterprise clients share egress IPs in pools of ~24.
fn assign_ip(rng: &mut SmallRng, country: Country, enterprise: bool, client_idx: u32) -> u32 {
    let block = (cast::u32_from_usize(country.index()) + 1) << 24;
    if enterprise {
        let org: u32 = rng.random_range(0..1 + client_idx / 24);
        block | 0x0080_0000 | (org & 0x003F_FFFF)
    } else {
        block | (client_idx & 0x007F_FFFF)
    }
}

/// Builds navigation alias tables for every (country, mobile, weekend) cell.
fn build_nav_tables(sites: &[Site]) -> NavTables {
    let mut tables = Vec::with_capacity(Country::COUNT * 4);
    let mut weights = vec![0.0f64; sites.len()];
    for country in Country::ALL {
        for mobile in [false, true] {
            for weekend in [false, true] {
                for (i, s) in sites.iter().enumerate() {
                    let platform_factor = if mobile {
                        s.mobile_affinity
                    } else {
                        (2.0 - s.mobile_affinity).max(0.2)
                    };
                    let wf = s.category.weekday_factor();
                    let day_factor = if weekend { 2.0 - wf } else { wf };
                    let infra_damp = if s.is_infrastructure { 0.02 } else { 1.0 };
                    weights[i] = s.weight
                        * s.country_mix[country.index()]
                        * platform_factor
                        * day_factor
                        * infra_damp;
                }
                tables.push(AliasTable::new(&weights));
            }
        }
    }
    NavTables { tables }
}

/// Non-website names queried by devices automatically (the noise floor of any
/// DNS-derived top list: TLD probes, NTP pools, connectivity checks).
#[allow(clippy::expect_used)]
fn background_names() -> Vec<DomainName> {
    [
        "com",
        "net",
        "org",
        "pool.ntp.org",
        "time.windows.com",
        "connectivity-check.net",
        "captive.apple.com",
        "detectportal.firefox.com",
        "updates.push.services.net",
        "telemetry.os-vendor.com",
        "crl.certauthority.com",
        "ocsp.certauthority.com",
    ]
    .iter()
    // topple-lint: allow(unwrap): a fixed table of literal hostnames
    .map(|s| DomainName::new(s).expect("static names are valid"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = World::generate(WorldConfig::tiny(5)).unwrap();
        let b = World::generate(WorldConfig::tiny(5)).unwrap();
        assert_eq!(a.sites.len(), b.sites.len());
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa.domain, sb.domain);
            assert_eq!(sa.category, sb.category);
            assert!((sa.weight - sb.weight).abs() < 1e-12);
            assert_eq!(sa.cloudflare, sb.cloudflare);
        }
        for (ca, cb) in a.clients.iter().zip(&b.clients) {
            assert_eq!(ca.country, cb.country);
            assert_eq!(ca.ip, cb.ip);
            assert_eq!(ca.browser, cb.browser);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(5)).unwrap();
        let b = World::generate(WorldConfig::tiny(6)).unwrap();
        let same = a
            .sites
            .iter()
            .zip(&b.sites)
            .filter(|(x, y)| x.domain == y.domain)
            .count();
        assert!(
            same < a.sites.len() / 2,
            "worlds too similar: {same} shared domains"
        );
    }

    #[test]
    fn domains_are_unique_and_indexed() {
        let w = World::generate(WorldConfig::tiny(7)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in &w.sites {
            assert!(seen.insert(s.domain.as_str().to_owned()));
            assert_eq!(w.site_by_domain(&s.domain).unwrap().id, s.id);
        }
        assert!(w
            .site_by_domain(&DomainName::new("not-a-site.example").unwrap())
            .is_none());
    }

    #[test]
    fn top_ten_never_cloudflare() {
        let w = World::generate(WorldConfig::small(8)).unwrap();
        for s in &w.sites[..10] {
            assert!(
                !s.cloudflare,
                "top-10 site {} must not be on Cloudflare",
                s.domain
            );
        }
        // But a meaningful share of the rest is.
        let share = w.sites.iter().filter(|s| s.cloudflare).count() as f64 / w.sites.len() as f64;
        assert!(share > 0.15 && share < 0.40, "CF share {share}");
    }

    #[test]
    fn country_mixes_sum_to_one() {
        let w = World::generate(WorldConfig::tiny(9)).unwrap();
        for s in &w.sites {
            let total: f64 = s.country_mix.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", s.domain);
            assert!(s.country_mix.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn local_sites_concentrate_at_home() {
        let w = World::generate(WorldConfig::small(10)).unwrap();
        for s in &w.sites {
            if !s.is_global && s.home_country == Country::Japan {
                assert!(
                    s.country_mix[Country::Japan.index()] > 0.5,
                    "Japanese local site {} mix {:?}",
                    s.domain,
                    s.country_mix[Country::Japan.index()]
                );
            }
        }
    }

    #[test]
    fn clients_have_sane_attributes() {
        let w = World::generate(WorldConfig::small(11)).unwrap();
        let chrome_optins = w.clients.iter().filter(|c| c.chrome_optin).count();
        let panelists = w.clients.iter().filter(|c| c.alexa_panelist).count();
        let umbrella = w
            .clients
            .iter()
            .filter(|c| c.resolver == Resolver::Umbrella)
            .count();
        let china = w
            .clients
            .iter()
            .filter(|c| c.resolver == Resolver::ChinaVoting)
            .count();
        assert!(
            chrome_optins > w.clients.len() / 20,
            "too few Chrome opt-ins"
        );
        assert!(panelists > 3, "panel empty");
        assert!(
            (panelists as f64) < w.clients.len() as f64 * 0.08,
            "panel too big"
        );
        assert!(umbrella > 0 && china > 0);
        // Only Chrome users can opt into Chrome telemetry.
        for c in &w.clients {
            if c.chrome_optin {
                assert_eq!(c.browser, Browser::Chrome);
            }
            if c.resolver == Resolver::ChinaVoting {
                assert_eq!(c.country, Country::China);
            }
        }
    }

    #[test]
    fn umbrella_user_base_is_us_enterprise_heavy() {
        let w = World::generate(WorldConfig::medium(12)).unwrap();
        let umbrella: Vec<_> = w
            .clients
            .iter()
            .filter(|c| c.resolver == Resolver::Umbrella)
            .collect();
        let us = umbrella
            .iter()
            .filter(|c| c.country == Country::UnitedStates)
            .count();
        assert!(
            us as f64 / umbrella.len() as f64 > 0.35,
            "US share of Umbrella base too low: {}/{}",
            us,
            umbrella.len()
        );
    }

    #[test]
    fn enterprise_clients_share_ips() {
        let w = World::generate(WorldConfig::medium(13)).unwrap();
        use std::collections::HashSet;
        let ent: Vec<u32> = w
            .clients
            .iter()
            .filter(|c| c.enterprise)
            .map(|c| c.ip)
            .collect();
        let distinct: HashSet<u32> = ent.iter().copied().collect();
        assert!(
            distinct.len() < ent.len(),
            "expected NAT sharing among enterprise clients"
        );
    }

    #[test]
    fn ground_truth_top_is_sorted() {
        let w = World::generate(WorldConfig::tiny(14)).unwrap();
        let top = w.ground_truth_top(50);
        for pair in top.windows(2) {
            assert!(w.sites[pair[0].index()].weight >= w.sites[pair[1].index()].weight);
        }
    }

    #[test]
    fn infrastructure_exists_and_is_wired() {
        let w = World::generate(WorldConfig::small(15)).unwrap();
        let infra = w.sites.iter().filter(|s| s.is_infrastructure).count();
        assert!(infra >= 3);
        let wired = w.sites.iter().filter(|s| !s.third_party.is_empty()).count();
        assert!(
            wired > w.sites.len() / 2,
            "most sites should embed third parties"
        );
    }
}
