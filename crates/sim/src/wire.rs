//! Binary log-record encoding for traffic events.
//!
//! Real vantage points exchange logs as flat records, not in-memory structs.
//! This module defines a compact length-prefixed wire format for
//! [`DayTraffic`] so observers can be run out-of-process, days can be
//! archived to disk, and replays are byte-exact. The format is
//! little-endian, versioned, and deliberately simple:
//!
//! ```text
//! file   := header record*
//! header := magic "TPL1" | day_index u32 | year i32 | month u8 | day u8 | counts u32×3
//! record := tag u8 | body
//!   tag 1 (page load)    : client u32 | site u32 | host u8 | flags u8 |
//!                          dwell u16 | own_req u16 | non200 u16 | tls u16
//!   tag 2 (third-party)  : client u32 | site u32 | host u8 | flags u8 |
//!                          requests u16 | non200 u16 | tls u16
//!   tag 3 (background)   : client u32 | name u16
//! flags bits: 0 root-path, 1 link-click, 2 private, 3 completed, 4 dns-fresh
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use topple_stats::cast;

use crate::date::Date;
use crate::ids::{ClientId, SiteId};
use crate::traffic::{BackgroundQuery, DayTraffic, PageLoad, ThirdPartyFetch};

const MAGIC: &[u8; 4] = b"TPL1";

const TAG_PAGE_LOAD: u8 = 1;
const TAG_THIRD_PARTY: u8 = 2;
const TAG_BACKGROUND: u8 = 3;

const FLAG_ROOT: u8 = 1 << 0;
const FLAG_LINK: u8 = 1 << 1;
const FLAG_PRIVATE: u8 = 1 << 2;
const FLAG_COMPLETED: u8 = 1 << 3;
const FLAG_DNS_FRESH: u8 = 1 << 4;

/// Errors produced when decoding a day archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The magic prefix did not match.
    BadMagic,
    /// The buffer ended mid-record.
    Truncated,
    /// An unknown record tag was encountered.
    UnknownTag(u8),
    /// Header counts did not match the records present.
    CountMismatch,
    /// The header's calendar date was invalid.
    BadDate,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad magic (not a TPL1 day archive)"),
            WireError::Truncated => write!(f, "archive truncated mid-record"),
            WireError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            WireError::CountMismatch => write!(f, "header counts disagree with records"),
            WireError::BadDate => write!(f, "invalid calendar date in header"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a day of traffic into its wire form.
pub fn encode_day(t: &DayTraffic) -> Bytes {
    let cap =
        18 + 4 * 3 + t.page_loads.len() * 19 + t.third_party.len() * 17 + t.background.len() * 7;
    let mut buf = BytesMut::with_capacity(cap);
    buf.put_slice(MAGIC);
    buf.put_u32_le(cast::u32_from_usize(t.day_index));
    buf.put_i32_le(t.day.year);
    buf.put_u8(t.day.month);
    buf.put_u8(t.day.day);
    buf.put_u32_le(cast::u32_from_usize(t.page_loads.len()));
    buf.put_u32_le(cast::u32_from_usize(t.third_party.len()));
    buf.put_u32_le(cast::u32_from_usize(t.background.len()));

    for pl in &t.page_loads {
        buf.put_u8(TAG_PAGE_LOAD);
        buf.put_u32_le(pl.client.0);
        buf.put_u32_le(pl.site.0);
        buf.put_u8(pl.host_idx);
        let mut flags = 0u8;
        if pl.is_root_path {
            flags |= FLAG_ROOT;
        }
        if pl.link_click {
            flags |= FLAG_LINK;
        }
        if pl.private_mode {
            flags |= FLAG_PRIVATE;
        }
        if pl.completed {
            flags |= FLAG_COMPLETED;
        }
        if pl.dns_fresh {
            flags |= FLAG_DNS_FRESH;
        }
        buf.put_u8(flags);
        buf.put_u16_le(pl.dwell_secs);
        buf.put_u16_le(pl.own_requests);
        buf.put_u16_le(pl.non200);
        buf.put_u16_le(pl.tls_handshakes);
    }
    for tp in &t.third_party {
        buf.put_u8(TAG_THIRD_PARTY);
        buf.put_u32_le(tp.client.0);
        buf.put_u32_le(tp.site.0);
        buf.put_u8(tp.host_idx);
        let mut flags = 0u8;
        if tp.private_mode {
            flags |= FLAG_PRIVATE;
        }
        if tp.dns_fresh {
            flags |= FLAG_DNS_FRESH;
        }
        buf.put_u8(flags);
        buf.put_u16_le(tp.requests);
        buf.put_u16_le(tp.non200);
        buf.put_u16_le(tp.tls_handshakes);
    }
    for bg in &t.background {
        buf.put_u8(TAG_BACKGROUND);
        buf.put_u32_le(bg.client.0);
        buf.put_u16_le(bg.name_idx);
    }
    buf.freeze()
}

/// Decodes a day archive produced by [`encode_day`].
pub fn decode_day(mut buf: &[u8]) -> Result<DayTraffic, WireError> {
    if buf.remaining() < 18 || &buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    buf.advance(4);
    let day_index = cast::usize_from_u32(buf.get_u32_le());
    let year = buf.get_i32_le();
    let month = buf.get_u8();
    let day_of_month = buf.get_u8();
    if !(1..=12).contains(&month) || day_of_month == 0 {
        return Err(WireError::BadDate);
    }
    let day = Date::new(year, month, day_of_month);
    if day_of_month > day.days_in_month() {
        return Err(WireError::BadDate);
    }
    let n_pl = cast::usize_from_u32(buf.get_u32_le());
    let n_tp = cast::usize_from_u32(buf.get_u32_le());
    let n_bg = cast::usize_from_u32(buf.get_u32_le());

    let mut page_loads = Vec::with_capacity(n_pl);
    let mut third_party = Vec::with_capacity(n_tp);
    let mut background = Vec::with_capacity(n_bg);

    while buf.has_remaining() {
        let tag = buf.get_u8();
        match tag {
            TAG_PAGE_LOAD => {
                if buf.remaining() < 18 {
                    return Err(WireError::Truncated);
                }
                let client = ClientId(buf.get_u32_le());
                let site = SiteId(buf.get_u32_le());
                let host_idx = buf.get_u8();
                let flags = buf.get_u8();
                page_loads.push(PageLoad {
                    client,
                    site,
                    host_idx,
                    is_root_path: flags & FLAG_ROOT != 0,
                    link_click: flags & FLAG_LINK != 0,
                    private_mode: flags & FLAG_PRIVATE != 0,
                    completed: flags & FLAG_COMPLETED != 0,
                    dns_fresh: flags & FLAG_DNS_FRESH != 0,
                    dwell_secs: buf.get_u16_le(),
                    own_requests: buf.get_u16_le(),
                    non200: buf.get_u16_le(),
                    tls_handshakes: buf.get_u16_le(),
                });
            }
            TAG_THIRD_PARTY => {
                if buf.remaining() < 16 {
                    return Err(WireError::Truncated);
                }
                let client = ClientId(buf.get_u32_le());
                let site = SiteId(buf.get_u32_le());
                let host_idx = buf.get_u8();
                let flags = buf.get_u8();
                third_party.push(ThirdPartyFetch {
                    client,
                    site,
                    host_idx,
                    private_mode: flags & FLAG_PRIVATE != 0,
                    dns_fresh: flags & FLAG_DNS_FRESH != 0,
                    requests: buf.get_u16_le(),
                    non200: buf.get_u16_le(),
                    tls_handshakes: buf.get_u16_le(),
                });
            }
            TAG_BACKGROUND => {
                if buf.remaining() < 6 {
                    return Err(WireError::Truncated);
                }
                background.push(BackgroundQuery {
                    client: ClientId(buf.get_u32_le()),
                    name_idx: buf.get_u16_le(),
                });
            }
            other => return Err(WireError::UnknownTag(other)),
        }
    }
    if page_loads.len() != n_pl || third_party.len() != n_tp || background.len() != n_bg {
        return Err(WireError::CountMismatch);
    }
    Ok(DayTraffic {
        day,
        day_index,
        page_loads,
        third_party,
        background,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;

    fn sample_day() -> DayTraffic {
        World::generate(WorldConfig::tiny(404))
            .unwrap()
            .simulate_day(2)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let t = sample_day();
        let encoded = encode_day(&t);
        let decoded = decode_day(&encoded).unwrap();
        assert_eq!(decoded.day, t.day);
        assert_eq!(decoded.day_index, t.day_index);
        assert_eq!(decoded.page_loads.len(), t.page_loads.len());
        for (a, b) in decoded.page_loads.iter().zip(&t.page_loads) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.site, b.site);
            assert_eq!(a.host_idx, b.host_idx);
            assert_eq!(a.is_root_path, b.is_root_path);
            assert_eq!(a.link_click, b.link_click);
            assert_eq!(a.private_mode, b.private_mode);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.dns_fresh, b.dns_fresh);
            assert_eq!(a.dwell_secs, b.dwell_secs);
            assert_eq!(a.own_requests, b.own_requests);
            assert_eq!(a.non200, b.non200);
            assert_eq!(a.tls_handshakes, b.tls_handshakes);
        }
        for (a, b) in decoded.third_party.iter().zip(&t.third_party) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.site, b.site);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.dns_fresh, b.dns_fresh);
        }
        for (a, b) in decoded.background.iter().zip(&t.background) {
            assert_eq!(a.client, b.client);
            assert_eq!(a.name_idx, b.name_idx);
        }
    }

    #[test]
    fn vantages_see_identical_metrics_through_the_wire() {
        // Encoding must be observationally transparent: metrics computed on
        // the decoded stream equal metrics on the original.
        let w = World::generate(WorldConfig::tiny(405)).unwrap();
        let t = w.simulate_day(0);
        let t2 = decode_day(&encode_day(&t)).unwrap();
        assert_eq!(t.page_loads.len(), t2.page_loads.len());
        let total_req: u32 = t.page_loads.iter().map(|p| p.total_requests()).sum();
        let total_req2: u32 = t2.page_loads.iter().map(|p| p.total_requests()).sum();
        assert_eq!(total_req, total_req2);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode_day(b"NOPE").unwrap_err(), WireError::BadMagic);
        assert_eq!(decode_day(b"").unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn rejects_truncation() {
        let t = sample_day();
        let encoded = encode_day(&t);
        // Chop mid-record.
        let cut = encoded.len() - 3;
        let err = decode_day(&encoded[..cut]).unwrap_err();
        assert!(matches!(
            err,
            WireError::Truncated | WireError::CountMismatch
        ));
    }

    #[test]
    fn rejects_unknown_tag() {
        let t = DayTraffic {
            day: Date::new(2022, 2, 1),
            day_index: 0,
            page_loads: vec![],
            third_party: vec![],
            background: vec![],
        };
        let mut bytes = encode_day(&t).to_vec();
        bytes.push(99); // bogus tag
        assert_eq!(decode_day(&bytes).unwrap_err(), WireError::UnknownTag(99));
    }

    #[test]
    fn rejects_bad_date() {
        let t = sample_day();
        let mut bytes = encode_day(&t).to_vec();
        bytes[12] = 13; // month byte
        assert_eq!(decode_day(&bytes).unwrap_err(), WireError::BadDate);
    }

    #[test]
    fn encoding_is_compact() {
        let t = sample_day();
        let encoded = encode_day(&t);
        // Upper bound: 19 B per page load + 17 per third-party + 7 per
        // background + header.
        let bound =
            18 + 12 + t.page_loads.len() * 19 + t.third_party.len() * 17 + t.background.len() * 7;
        assert!(encoded.len() <= bound);
    }
}
