//! The simulation's categorical vocabulary: countries, platforms, browsers,
//! and website categories, together with the structural parameters that drive
//! the biases the paper observes.

/// Client countries. The ten Chrome-designated high-fidelity countries plus
/// China (Section 6.1) and a rest-of-world bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Country {
    /// Brazil.
    Brazil,
    /// Germany.
    Germany,
    /// Egypt.
    Egypt,
    /// United Kingdom.
    UnitedKingdom,
    /// Indonesia.
    Indonesia,
    /// India.
    India,
    /// Japan.
    Japan,
    /// Nigeria.
    Nigeria,
    /// United States.
    UnitedStates,
    /// South Africa.
    SouthAfrica,
    /// China.
    China,
    /// Rest of world.
    Rest,
}

impl Country {
    /// All countries, in stable order.
    pub const ALL: [Country; 12] = [
        Country::Brazil,
        Country::Germany,
        Country::Egypt,
        Country::UnitedKingdom,
        Country::Indonesia,
        Country::India,
        Country::Japan,
        Country::Nigeria,
        Country::UnitedStates,
        Country::SouthAfrica,
        Country::China,
        Country::Rest,
    ];

    /// The eleven countries evaluated in Section 6 (all but [`Country::Rest`]).
    pub const EVALUATED: [Country; 11] = [
        Country::Brazil,
        Country::Germany,
        Country::Egypt,
        Country::UnitedKingdom,
        Country::Indonesia,
        Country::India,
        Country::Japan,
        Country::Nigeria,
        Country::UnitedStates,
        Country::SouthAfrica,
        Country::China,
    ];

    /// Stable dense index for array-keyed lookups.
    #[inline]
    pub fn index(self) -> usize {
        // topple-lint: allow(lossy-cast): fieldless enum discriminant, dense and below COUNT
        self as usize
    }

    /// Number of countries.
    pub const COUNT: usize = 12;

    /// ISO-3166-ish short code.
    pub fn code(self) -> &'static str {
        match self {
            Country::Brazil => "BR",
            Country::Germany => "DE",
            Country::Egypt => "EG",
            Country::UnitedKingdom => "GB",
            Country::Indonesia => "ID",
            Country::India => "IN",
            Country::Japan => "JP",
            Country::Nigeria => "NG",
            Country::UnitedStates => "US",
            Country::SouthAfrica => "ZA",
            Country::China => "CN",
            Country::Rest => "XX",
        }
    }

    /// Share of the simulated client population in this country.
    ///
    /// Loosely follows global Internet-user distribution; the exact values
    /// matter less than the ordering (CN/US/IN large; EG/ZA small).
    pub fn population_share(self) -> f64 {
        match self {
            Country::Brazil => 0.07,
            Country::Germany => 0.05,
            Country::Egypt => 0.03,
            Country::UnitedKingdom => 0.05,
            Country::Indonesia => 0.06,
            Country::India => 0.14,
            Country::Japan => 0.06,
            Country::Nigeria => 0.04,
            Country::UnitedStates => 0.18,
            Country::SouthAfrica => 0.02,
            Country::China => 0.16,
            Country::Rest => 0.14,
        }
    }

    /// Probability that a client in this country is a mobile-first user.
    pub fn mobile_share(self) -> f64 {
        match self {
            Country::Brazil => 0.62,
            Country::Germany => 0.42,
            Country::Egypt => 0.68,
            Country::UnitedKingdom => 0.46,
            Country::Indonesia => 0.72,
            Country::India => 0.76,
            Country::Japan => 0.56,
            Country::Nigeria => 0.80,
            Country::UnitedStates => 0.48,
            Country::SouthAfrica => 0.66,
            Country::China => 0.64,
            Country::Rest => 0.60,
        }
    }

    /// How strongly browsing in this country concentrates on locally-focused
    /// sites (0 = fully global tastes, 1 = fully local).
    ///
    /// Japan and China are modelled as strongly local ecosystems — the paper
    /// finds all lists represent Japan poorly, and Secrank's Chinese vantage
    /// generalizes badly outside China.
    pub fn locality(self) -> f64 {
        match self {
            Country::Japan => 0.92,
            Country::China => 0.93,
            Country::Indonesia => 0.72,
            Country::India => 0.62,
            Country::Brazil => 0.68,
            Country::Egypt => 0.70,
            Country::Nigeria => 0.62,
            Country::Germany => 0.58,
            Country::UnitedKingdom => 0.42,
            Country::UnitedStates => 0.38,
            Country::SouthAfrica => 0.55,
            Country::Rest => 0.55,
        }
    }

    /// Probability that an *enterprise* client in this country routes DNS
    /// through the Umbrella-style resolver (Cisco's base is US-centric).
    pub fn umbrella_enterprise_rate(self) -> f64 {
        match self {
            Country::UnitedStates => 0.75,
            Country::UnitedKingdom => 0.35,
            Country::Germany => 0.30,
            Country::Japan => 0.15,
            Country::China => 0.01,
            _ => 0.12,
        }
    }

    /// Probability that a client in this country is an enterprise/managed
    /// workstation (drives weekday periodicity and Umbrella's user base).
    pub fn enterprise_rate(self) -> f64 {
        match self {
            Country::UnitedStates => 0.30,
            Country::Germany => 0.30,
            Country::UnitedKingdom => 0.28,
            Country::Japan => 0.32,
            _ => 0.15,
        }
    }
}

/// Client platform (operating system).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Platform {
    /// Desktop Windows — the Chrome team's representative desktop platform.
    Windows,
    /// Android — the representative mobile platform.
    Android,
    /// macOS desktop.
    MacOs,
    /// iOS mobile.
    Ios,
    /// Anything else (Linux desktops, smart TVs, consoles…).
    Other,
}

impl Platform {
    /// All platforms in stable order.
    pub const ALL: [Platform; 5] = [
        Platform::Windows,
        Platform::Android,
        Platform::MacOs,
        Platform::Ios,
        Platform::Other,
    ];

    /// Stable dense index.
    #[inline]
    pub fn index(self) -> usize {
        // topple-lint: allow(lossy-cast): fieldless enum discriminant, dense and below COUNT
        self as usize
    }

    /// Number of platforms.
    pub const COUNT: usize = 5;

    /// Whether this is a mobile platform.
    pub fn is_mobile(self) -> bool {
        matches!(self, Platform::Android | Platform::Ios)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Windows => "Windows",
            Platform::Android => "Android",
            Platform::MacOs => "macOS",
            Platform::Ios => "iOS",
            Platform::Other => "Other",
        }
    }
}

/// Web browser family. The paper's "top 5 browsers" filter keeps the five
/// most popular families and drops the long tail plus automation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Browser {
    /// Google Chrome.
    Chrome,
    /// Apple Safari.
    Safari,
    /// Mozilla Firefox.
    Firefox,
    /// Microsoft Edge.
    Edge,
    /// Samsung Internet.
    Samsung,
    /// Long-tail browsers (Opera, UC, Brave…).
    OtherBrowser,
    /// Non-browser automation: monitoring, scrapers, SDKs, bots.
    Automation,
}

impl Browser {
    /// All browser families in stable order.
    pub const ALL: [Browser; 7] = [
        Browser::Chrome,
        Browser::Safari,
        Browser::Firefox,
        Browser::Edge,
        Browser::Samsung,
        Browser::OtherBrowser,
        Browser::Automation,
    ];

    /// Stable dense index.
    #[inline]
    pub fn index(self) -> usize {
        // topple-lint: allow(lossy-cast): fieldless enum discriminant, dense and below COUNT
        self as usize
    }

    /// Number of browser families.
    pub const COUNT: usize = 7;

    /// Whether the family is in the "top 5 most popular browsers" filter.
    pub fn is_top5(self) -> bool {
        matches!(
            self,
            Browser::Chrome | Browser::Safari | Browser::Firefox | Browser::Edge | Browser::Samsung
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Browser::Chrome => "Chrome",
            Browser::Safari => "Safari",
            Browser::Firefox => "Firefox",
            Browser::Edge => "Edge",
            Browser::Samsung => "Samsung Internet",
            Browser::OtherBrowser => "Other",
            Browser::Automation => "Automation",
        }
    }
}

/// Website category, mirroring the 21 categories of Table 3 (plus Technology
/// and Finance to round out the taxonomy used by the world generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Category {
    /// Government services.
    Government,
    /// News and media.
    News,
    /// Education.
    Education,
    /// Science.
    Science,
    /// Community and social.
    Community,
    /// Business.
    Business,
    /// Gaming.
    Gaming,
    /// Children's content.
    Kids,
    /// Lifestyle.
    Lifestyle,
    /// Arts.
    Arts,
    /// Health.
    Health,
    /// Personal blogs.
    Blog,
    /// Sports.
    Sports,
    /// Travel.
    Travel,
    /// Shopping and e-commerce.
    Shopping,
    /// Automotive.
    Cars,
    /// Adult content.
    Adult,
    /// Abuse: spam, phishing, malware distribution.
    Abuse,
    /// Gambling.
    Gambling,
    /// Parked domains with no real content.
    Parked,
    /// Technology and developer services.
    Technology,
    /// Finance and banking.
    Finance,
}

impl Category {
    /// All categories in stable order.
    pub const ALL: [Category; 22] = [
        Category::Government,
        Category::News,
        Category::Education,
        Category::Science,
        Category::Community,
        Category::Business,
        Category::Gaming,
        Category::Kids,
        Category::Lifestyle,
        Category::Arts,
        Category::Health,
        Category::Blog,
        Category::Sports,
        Category::Travel,
        Category::Shopping,
        Category::Cars,
        Category::Adult,
        Category::Abuse,
        Category::Gambling,
        Category::Parked,
        Category::Technology,
        Category::Finance,
    ];

    /// Number of categories (the paper's Bonferroni divisor is this count).
    pub const COUNT: usize = 22;

    /// Stable dense index.
    #[inline]
    pub fn index(self) -> usize {
        // topple-lint: allow(lossy-cast): fieldless enum discriminant, dense and below COUNT
        self as usize
    }

    /// Display name matching Table 3's abbreviations expanded.
    pub fn name(self) -> &'static str {
        match self {
            Category::Government => "Gov't",
            Category::News => "News",
            Category::Education => "Educ.",
            Category::Science => "Science",
            Category::Community => "Comm.",
            Category::Business => "Bus.",
            Category::Gaming => "Gaming",
            Category::Kids => "Kids",
            Category::Lifestyle => "Life",
            Category::Arts => "Arts",
            Category::Health => "Health",
            Category::Blog => "Blog",
            Category::Sports => "Sports",
            Category::Travel => "Travel",
            Category::Shopping => "Shop",
            Category::Cars => "Cars",
            Category::Adult => "Adult",
            Category::Abuse => "Abuse",
            Category::Gambling => "Gambl.",
            Category::Parked => "Parked",
            Category::Technology => "Tech",
            Category::Finance => "Finance",
        }
    }

    /// Share of the site universe in this category (sums to ~1).
    pub fn universe_share(self) -> f64 {
        match self {
            Category::Government => 0.015,
            Category::News => 0.045,
            Category::Education => 0.03,
            Category::Science => 0.02,
            Category::Community => 0.06,
            Category::Business => 0.095,
            Category::Gaming => 0.045,
            Category::Kids => 0.01,
            Category::Lifestyle => 0.06,
            Category::Arts => 0.035,
            Category::Health => 0.035,
            Category::Blog => 0.09,
            Category::Sports => 0.03,
            Category::Travel => 0.035,
            Category::Shopping => 0.10,
            Category::Cars => 0.02,
            Category::Adult => 0.06,
            Category::Abuse => 0.025,
            Category::Gambling => 0.02,
            Category::Parked => 0.065,
            Category::Technology => 0.075,
            Category::Finance => 0.03,
        }
    }

    /// Relative propensity for other sites to hyperlink here (drives the
    /// Majestic backlink skew: institutions are link-rich, grey content is
    /// link-poor).
    pub fn link_propensity(self) -> f64 {
        match self {
            Category::Government => 9.0,
            Category::News => 5.0,
            Category::Education => 3.5,
            Category::Science => 3.0,
            Category::Travel => 2.6,
            Category::Technology => 2.0,
            Category::Finance => 1.4,
            Category::Health => 1.2,
            Category::Business => 1.0,
            Category::Community => 1.0,
            Category::Arts => 0.9,
            Category::Sports => 0.9,
            Category::Lifestyle => 0.8,
            Category::Blog => 0.7,
            Category::Kids => 0.8,
            Category::Cars => 0.8,
            Category::Shopping => 0.7,
            Category::Gaming => 0.7,
            Category::Adult => 0.06,
            Category::Gambling => 0.08,
            Category::Abuse => 0.04,
            Category::Parked => 0.01,
        }
    }

    /// Fraction of visits to this category made in a private browsing window
    /// (private-mode visits are invisible to browser-extension panels \[15\],
    /// and Chrome telemetry also excludes incognito).
    pub fn private_mode_share(self) -> f64 {
        match self {
            Category::Adult => 0.45,
            Category::Gambling => 0.30,
            Category::Abuse => 0.25,
            Category::Health => 0.10,
            _ => 0.03,
        }
    }

    /// Whether extension-panel members systematically under-visit this
    /// category (panel *selection* bias: the demographics that install
    /// measurement extensions browse differently from the population).
    pub fn panel_averse(self) -> bool {
        matches!(self, Category::Adult | Category::Gambling | Category::Abuse)
    }

    /// Weekday activity multiplier (weekend = 2 − weekday within each visit
    /// budget, so >1 means a work-hours category).
    pub fn weekday_factor(self) -> f64 {
        match self {
            Category::Government => 1.35,
            Category::Business => 1.30,
            Category::Education => 1.30,
            Category::Finance => 1.25,
            Category::Science => 1.20,
            Category::Technology => 1.15,
            Category::News => 1.10,
            Category::Health => 1.05,
            Category::Gaming => 0.80,
            Category::Adult => 0.85,
            Category::Gambling => 0.85,
            Category::Sports => 0.90,
            Category::Lifestyle => 0.92,
            Category::Arts => 0.95,
            Category::Travel => 0.95,
            _ => 1.0,
        }
    }

    /// Probability that the site is crawlable and publicly hyperlinked (Chrome
    /// telemetry excludes non-public domains; crawlers can only find linked
    /// sites).
    pub fn public_web_rate(self) -> f64 {
        match self {
            Category::Abuse => 0.45,
            Category::Parked => 0.35,
            Category::Adult => 0.88,
            _ => 0.97,
        }
    }

    /// Extra mobile affinity of visits to this category (multiplies the
    /// client-platform mix; >1 means disproportionately mobile).
    pub fn mobile_affinity(self) -> f64 {
        match self {
            Category::Community => 1.35,
            Category::Shopping => 1.25,
            Category::Lifestyle => 1.25,
            Category::Gaming => 1.15,
            Category::Sports => 1.10,
            Category::Kids => 1.10,
            Category::Adult => 1.10,
            Category::Government => 0.60,
            Category::Business => 0.65,
            Category::Education => 0.70,
            Category::Science => 0.65,
            Category::Finance => 0.80,
            Category::Technology => 0.75,
            _ => 1.0,
        }
    }

    /// Mean number of same-site subresource requests per page load. News and
    /// shopping pages are heavy; parked pages are nearly empty. This is what
    /// makes the paper's request-based metrics disagree with root-page loads.
    pub fn subresource_mean(self) -> f64 {
        match self {
            Category::News => 38.0,
            Category::Shopping => 30.0,
            Category::Sports => 28.0,
            Category::Lifestyle => 24.0,
            Category::Arts => 20.0,
            Category::Community => 18.0,
            Category::Travel => 22.0,
            Category::Cars => 20.0,
            Category::Gaming => 16.0,
            Category::Business => 14.0,
            Category::Health => 14.0,
            Category::Blog => 10.0,
            Category::Adult => 16.0,
            Category::Gambling => 14.0,
            Category::Finance => 12.0,
            Category::Technology => 12.0,
            Category::Education => 10.0,
            Category::Science => 9.0,
            Category::Government => 8.0,
            Category::Kids => 12.0,
            Category::Abuse => 4.0,
            Category::Parked => 1.5,
        }
    }

    /// Intrinsic visit-popularity damping: parked pages and abuse
    /// infrastructure attract almost no deliberate visits regardless of
    /// where a Zipf draw would have placed them (typo traffic and victim
    /// clicks only).
    pub fn popularity_damping(self) -> f64 {
        match self {
            Category::Parked => 0.05,
            Category::Abuse => 0.18,
            _ => 1.0,
        }
    }

    /// Mean dwell time in seconds for a completed page view.
    pub fn dwell_mean_secs(self) -> f64 {
        match self {
            Category::Gaming => 240.0,
            Category::Community => 210.0,
            Category::Adult => 180.0,
            Category::News => 90.0,
            Category::Sports => 100.0,
            Category::Arts => 110.0,
            Category::Lifestyle => 100.0,
            Category::Blog => 80.0,
            Category::Shopping => 70.0,
            Category::Travel => 85.0,
            Category::Gambling => 150.0,
            Category::Kids => 160.0,
            Category::Health => 75.0,
            Category::Education => 120.0,
            Category::Science => 100.0,
            Category::Finance => 60.0,
            Category::Business => 55.0,
            Category::Technology => 70.0,
            Category::Government => 50.0,
            Category::Cars => 70.0,
            Category::Abuse => 15.0,
            Category::Parked => 6.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_shares_sum_to_one() {
        let total: f64 = Category::ALL.iter().map(|c| c.universe_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "category shares sum to {total}");
    }

    #[test]
    fn country_shares_sum_to_one() {
        let total: f64 = Country::ALL.iter().map(|c| c.population_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "country shares sum to {total}");
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, c) in Country::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, p) in Platform::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        for (i, b) in Browser::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        for (i, c) in Category::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn top5_browser_filter() {
        let top5: Vec<_> = Browser::ALL.iter().filter(|b| b.is_top5()).collect();
        assert_eq!(top5.len(), 5);
        assert!(!Browser::Automation.is_top5());
        assert!(!Browser::OtherBrowser.is_top5());
    }

    #[test]
    fn grey_categories_are_link_poor_and_private() {
        assert!(Category::Adult.link_propensity() < 0.1);
        assert!(Category::Government.link_propensity() > 5.0);
        assert!(Category::Adult.private_mode_share() > 0.3);
        assert!(Category::Adult.panel_averse() && !Category::News.panel_averse());
        assert!(Category::Business.private_mode_share() < 0.1);
    }

    #[test]
    fn weekday_factors_bracket_one() {
        for c in Category::ALL {
            let f = c.weekday_factor();
            assert!(f > 0.5 && f < 1.5, "{c:?} factor {f}");
        }
    }

    #[test]
    fn evaluated_countries_exclude_rest() {
        assert_eq!(Country::EVALUATED.len(), 11);
        assert!(!Country::EVALUATED.contains(&Country::Rest));
    }
}
