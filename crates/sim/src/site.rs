//! Websites: the ground-truth objects whose popularity the top lists estimate.

use topple_psl::{DomainName, Origin, Scheme};
use topple_stats::cast;

use crate::ids::SiteId;
use crate::taxonomy::{Category, Country};

/// Role of one FQDN within a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostKind {
    /// The registrable domain itself (`example.com`).
    Apex,
    /// The `www.` host — the default navigation target for most sites.
    Www,
    /// The `m.` mobile host.
    Mobile,
    /// Service hosts (`cdn.`, `api.`, `static.`…) fetched as subresources,
    /// never navigated to.
    Service,
}

/// One FQDN belonging to a site.
#[derive(Debug, Clone)]
pub struct SiteHost {
    /// The fully-qualified name.
    pub name: DomainName,
    /// Its role.
    pub kind: HostKind,
}

/// A website in the synthetic universe.
///
/// `weight` is *ground truth popularity* — the quantity every vantage point
/// and top list estimates with its own bias. It is never exposed to the
/// observer crates except through generated traffic.
#[derive(Debug, Clone)]
pub struct Site {
    /// Dense id.
    pub id: SiteId,
    /// Registrable domain (unique within the world).
    pub domain: DomainName,
    /// Website category.
    pub category: Category,
    /// Country of the site's primary audience.
    pub home_country: Country,
    /// Whether the site has a global rather than local audience.
    pub is_global: bool,
    /// Ground-truth popularity weight (Zipf × log-normal noise).
    pub weight: f64,
    /// Per-country share of the site's audience (sums to 1).
    pub country_mix: [f64; Country::COUNT],
    /// Mobile-vs-desktop affinity multiplier (>1 = mobile-heavy).
    pub mobile_affinity: f64,
    /// Whether the site serves HTTPS (drives TLS handshakes and origin scheme).
    pub https: bool,
    /// Whether the site is proxied by the Cloudflare-style CDN.
    pub cloudflare: bool,
    /// Whether the site is publicly linked and crawlable (Chrome telemetry
    /// excludes non-public domains; crawlers cannot discover unlinked sites).
    pub public_web: bool,
    /// Probability a page load completes (First Contentful Paint reached).
    pub completion_rate: f64,
    /// Mean same-site subresource requests per page load.
    pub subresource_mean: f64,
    /// Fraction of requests answered with a non-200 status.
    pub error_rate: f64,
    /// Log-space mean of dwell time per completed view.
    pub dwell_mu: f64,
    /// Fraction of visits made in a private browsing window.
    pub private_share: f64,
    /// Fraction of navigations that land on the root path `/`.
    pub root_nav_share: f64,
    /// The site's FQDNs; index 0 is always the apex.
    pub hosts: Vec<SiteHost>,
    /// Third-party infrastructure dependencies: `(zone, inclusion prob)`.
    pub third_party: Vec<(SiteId, f32)>,
    /// Whether this site *is* third-party infrastructure (analytics, ads,
    /// CDN) fetched by other sites' pages and queried by background jobs.
    pub is_infrastructure: bool,
    /// Multiplier the Alexa-style rank applies to this site's panel score.
    ///
    /// Models "Alexa Certify" \[4\]: sites that install the certification code
    /// are measured directly and systematically rank better than panel
    /// sampling alone would place them (1.0 = not certified). One of the
    /// mechanisms that pushes traffic-poor sites into the list's head.
    pub certify_boost: f64,
}

impl Site {
    /// URL scheme implied by the site's TLS deployment.
    pub fn scheme(&self) -> Scheme {
        if self.https {
            Scheme::Https
        } else {
            Scheme::Http
        }
    }

    /// The web origin of one of this site's hosts (CrUX's aggregation unit).
    pub fn origin_of(&self, host_idx: usize) -> Origin {
        Origin::new(self.scheme(), self.hosts[host_idx].name.clone(), None)
    }

    /// Index of the preferred navigation host for a platform class.
    ///
    /// Mobile clients prefer the `m.` host when one exists; desktop clients
    /// split between `www` and the apex.
    pub fn nav_host(&self, mobile: bool, coin: f64) -> usize {
        if mobile {
            if let Some(i) = self.hosts.iter().position(|h| h.kind == HostKind::Mobile) {
                if coin < 0.55 {
                    return i;
                }
            }
        }
        match self.hosts.iter().position(|h| h.kind == HostKind::Www) {
            Some(www) if coin < 0.75 => www,
            _ => 0, // apex
        }
    }

    /// Index of a service host for third-party fetches (falls back to apex).
    pub fn service_host(&self, coin: f64) -> usize {
        // Runs once per third-party fetch on the fused ingestion hot path:
        // pick the n-th service host by a second scan instead of collecting
        // the candidate indices (`tests/ingest_alloc.rs` pins zero allocs).
        let n = self
            .hosts
            .iter()
            .filter(|h| h.kind == HostKind::Service)
            .count();
        if n == 0 {
            return 0;
        }
        let pick = cast::floor_index(coin * n as f64, n);
        self.hosts
            .iter()
            .enumerate()
            .filter(|(_, h)| h.kind == HostKind::Service)
            .nth(pick)
            .map_or(0, |(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_site() -> Site {
        let domain = DomainName::new("example.com").unwrap();
        Site {
            id: SiteId(0),
            domain: domain.clone(),
            category: Category::News,
            home_country: Country::UnitedStates,
            is_global: true,
            weight: 1.0,
            country_mix: [1.0 / Country::COUNT as f64; Country::COUNT],
            mobile_affinity: 1.0,
            https: true,
            cloudflare: true,
            public_web: true,
            completion_rate: 0.9,
            subresource_mean: 10.0,
            error_rate: 0.05,
            dwell_mu: 4.0,
            private_share: 0.03,
            root_nav_share: 0.5,
            hosts: vec![
                SiteHost {
                    name: domain.clone(),
                    kind: HostKind::Apex,
                },
                SiteHost {
                    name: domain.prepend("www").unwrap(),
                    kind: HostKind::Www,
                },
                SiteHost {
                    name: domain.prepend("m").unwrap(),
                    kind: HostKind::Mobile,
                },
                SiteHost {
                    name: domain.prepend("cdn").unwrap(),
                    kind: HostKind::Service,
                },
            ],
            third_party: vec![],
            is_infrastructure: false,
            certify_boost: 1.0,
        }
    }

    #[test]
    fn origins_follow_scheme() {
        let mut s = dummy_site();
        assert_eq!(s.origin_of(1).to_string(), "https://www.example.com");
        s.https = false;
        assert_eq!(s.origin_of(0).to_string(), "http://example.com");
    }

    #[test]
    fn nav_host_prefers_mobile_on_mobile() {
        let s = dummy_site();
        let idx = s.nav_host(true, 0.1);
        assert_eq!(s.hosts[idx].kind, HostKind::Mobile);
        let idx = s.nav_host(false, 0.1);
        assert_eq!(s.hosts[idx].kind, HostKind::Www);
        let idx = s.nav_host(false, 0.9);
        assert_eq!(s.hosts[idx].kind, HostKind::Apex);
    }

    #[test]
    fn service_host_selection() {
        let s = dummy_site();
        let idx = s.service_host(0.3);
        assert_eq!(s.hosts[idx].kind, HostKind::Service);
        // Site with no service hosts falls back to apex.
        let mut s2 = dummy_site();
        s2.hosts.truncate(2);
        assert_eq!(s2.service_host(0.3), 0);
    }
}
