//! Minimal Gregorian calendar support for the measurement window.
//!
//! The study window is February 1–28, 2022 (Section 4.1). We only need day
//! arithmetic, weekday computation, and month iteration — not a full datetime
//! stack — so this module implements exactly that.

use std::fmt;

/// Day of week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Weekday {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl Weekday {
    /// Whether this is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }

    /// Short English name.
    pub fn name(self) -> &'static str {
        match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        }
    }
}

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2022.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl Date {
    /// Constructs a date, panicking on out-of-range components.
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        let d = Date { year, month, day };
        assert!(
            day >= 1 && day <= d.days_in_month(),
            "day out of range: {day}"
        );
        d
    }

    /// Whether `year` is a Gregorian leap year.
    pub fn is_leap_year(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    /// Number of days in this date's month.
    pub fn days_in_month(self) -> u8 {
        match self.month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 => {
                if Date::is_leap_year(self.year) {
                    29
                } else {
                    28
                }
            }
            // topple-lint: allow(panic): Date constructors reject months outside 1..=12
            _ => unreachable!("month validated at construction"),
        }
    }

    /// Day of week via Zeller's congruence.
    pub fn weekday(self) -> Weekday {
        let (mut y, mut m) = (self.year, i32::from(self.month));
        if m < 3 {
            m += 12;
            y -= 1;
        }
        let k = y % 100;
        let j = y / 100;
        let q = i32::from(self.day);
        // h: 0 = Saturday, 1 = Sunday, 2 = Monday, ...
        let h = (q + (13 * (m + 1)) / 5 + k + k / 4 + j / 4 + 5 * j).rem_euclid(7);
        match h {
            0 => Weekday::Sat,
            1 => Weekday::Sun,
            2 => Weekday::Mon,
            3 => Weekday::Tue,
            4 => Weekday::Wed,
            5 => Weekday::Thu,
            6 => Weekday::Fri,
            // topple-lint: allow(panic): rem_euclid(7) yields exactly 0..=6
            _ => unreachable!("rem_euclid(7) is in 0..=6"),
        }
    }

    /// The next calendar day.
    pub fn succ(self) -> Date {
        if self.day < self.days_in_month() {
            Date {
                day: self.day + 1,
                ..self
            }
        } else if self.month < 12 {
            Date {
                year: self.year,
                month: self.month + 1,
                day: 1,
            }
        } else {
            Date {
                year: self.year + 1,
                month: 1,
                day: 1,
            }
        }
    }

    /// Iterates `count` consecutive days starting at `self`.
    pub fn iter_days(self, count: usize) -> impl Iterator<Item = Date> {
        let mut cur = self;
        (0..count).map(move |_| {
            let out = cur;
            cur = cur.succ();
            out
        })
    }

    /// The paper's measurement window: February 1–28, 2022.
    pub fn study_window() -> Vec<Date> {
        Date::new(2022, 2, 1).iter_days(28).collect()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_weekdays() {
        // February 1, 2022 was a Tuesday; Feb 28 a Monday.
        assert_eq!(Date::new(2022, 2, 1).weekday(), Weekday::Tue);
        assert_eq!(Date::new(2022, 2, 28).weekday(), Weekday::Mon);
        // Y2K: January 1, 2000 was a Saturday.
        assert_eq!(Date::new(2000, 1, 1).weekday(), Weekday::Sat);
        // Unix epoch: January 1, 1970 was a Thursday.
        assert_eq!(Date::new(1970, 1, 1).weekday(), Weekday::Thu);
    }

    #[test]
    fn weekend_flags() {
        assert!(Date::new(2022, 2, 5).weekday().is_weekend()); // Saturday
        assert!(Date::new(2022, 2, 6).weekday().is_weekend()); // Sunday
        assert!(!Date::new(2022, 2, 7).weekday().is_weekend()); // Monday
    }

    #[test]
    fn leap_years() {
        assert!(Date::is_leap_year(2000));
        assert!(!Date::is_leap_year(1900));
        assert!(Date::is_leap_year(2024));
        assert!(!Date::is_leap_year(2022));
        assert_eq!(Date::new(2024, 2, 1).days_in_month(), 29);
        assert_eq!(Date::new(2022, 2, 1).days_in_month(), 28);
    }

    #[test]
    fn succ_rolls_over() {
        assert_eq!(Date::new(2022, 2, 28).succ(), Date::new(2022, 3, 1));
        assert_eq!(Date::new(2022, 12, 31).succ(), Date::new(2023, 1, 1));
        assert_eq!(Date::new(2022, 2, 10).succ(), Date::new(2022, 2, 11));
    }

    #[test]
    fn study_window_shape() {
        let w = Date::study_window();
        assert_eq!(w.len(), 28);
        assert_eq!(w[0], Date::new(2022, 2, 1));
        assert_eq!(w[27], Date::new(2022, 2, 28));
        assert_eq!(w.iter().filter(|d| d.weekday().is_weekend()).count(), 8);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn rejects_feb_30() {
        Date::new(2022, 2, 30);
    }

    #[test]
    fn display_format() {
        assert_eq!(Date::new(2022, 2, 3).to_string(), "2022-02-03");
    }
}
