//! Dense integer identifiers for sites and clients.

use std::fmt;

use topple_stats::cast;

/// Identifier of a website in the world (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        cast::usize_from_u32(self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// Identifier of a client in the world (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        cast::usize_from_u32(self.0)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_and_display() {
        assert_eq!(SiteId(7).index(), 7);
        assert_eq!(ClientId(9).index(), 9);
        assert_eq!(SiteId(7).to_string(), "site#7");
        assert_eq!(ClientId(9).to_string(), "client#9");
        assert!(SiteId(1) < SiteId(2));
    }
}
