//! Synthetic domain-name generation.
//!
//! Mints unique, realistic registrable domains under the built-in PSL:
//! global sites draw from generic TLDs, locally-focused sites from their home
//! country's suffixes, and a small share lands on private registry suffixes
//! (`*.github.io`-style tenants). Uniqueness is guaranteed by a collision set
//! with a numeric-suffix fallback.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::Rng;
use topple_psl::DomainName;

use crate::taxonomy::{Category, Country};

const ADJECTIVES: &[&str] = &[
    "swift", "bright", "quiet", "brave", "lunar", "solar", "amber", "cobalt", "crimson", "emerald",
    "golden", "iron", "jade", "mellow", "noble", "onyx", "pearl", "rapid", "scarlet", "teal",
    "urban", "vivid", "wild", "young", "zesty", "arc", "bold", "calm", "deep", "early", "fresh",
    "grand", "happy", "ideal", "jolly", "keen", "lively", "magic", "nimble", "open", "prime",
    "quick", "royal", "sunny", "tidy", "ultra", "vast", "warm", "alpha", "beta",
];

const NOUNS: &[&str] = &[
    "river", "forest", "market", "harbor", "studio", "garden", "bridge", "castle", "desert",
    "engine", "falcon", "glacier", "hollow", "island", "jungle", "kernel", "lantern", "meadow",
    "nebula", "orchid", "prairie", "quartz", "ridge", "summit", "tiger", "umbrella", "valley",
    "willow", "xenon", "yarrow", "zephyr", "anchor", "beacon", "canyon", "dolphin", "ember",
    "fjord", "grove", "harvest", "iris", "jasper", "knoll", "lagoon", "mosaic", "north", "opal",
    "pixel", "quill", "raven", "spruce",
];

const CATEGORY_HINTS: &[(&str, &[&str])] = &[
    (
        "news",
        &["daily", "times", "herald", "press", "wire", "report"],
    ),
    (
        "shop",
        &["store", "mart", "deals", "cart", "bazaar", "outlet"],
    ),
    ("tech", &["labs", "cloud", "stack", "byte", "code", "data"]),
    (
        "game",
        &["play", "arcade", "quest", "arena", "guild", "pixelgames"],
    ),
];

/// Per-country TLD pools (suffixes must exist in the built-in PSL).
fn country_tlds(c: Country) -> &'static [&'static str] {
    match c {
        Country::Brazil => &["com.br", "net.br", "org.br", "br"],
        Country::Germany => &["de"],
        Country::Egypt => &["com.eg", "eg"],
        Country::UnitedKingdom => &["co.uk", "org.uk", "uk"],
        Country::Indonesia => &["co.id", "web.id", "id"],
        Country::India => &["co.in", "in", "org.in"],
        Country::Japan => &["co.jp", "ne.jp", "or.jp", "jp"],
        Country::Nigeria => &["com.ng", "ng"],
        Country::UnitedStates => &["com", "us", "org", "net"],
        Country::SouthAfrica => &["co.za", "za"],
        Country::China => &["com.cn", "cn", "net.cn"],
        Country::Rest => &["com", "net", "org", "io"],
    }
}

const GENERIC_TLDS: &[&str] = &[
    "com", "net", "org", "io", "co", "info", "xyz", "online", "site", "app", "dev", "me",
];

const PRIVATE_SUFFIXES: &[&str] = &["github.io", "blogspot.com", "pages.dev", "netlify.app"];

fn gov_tld(c: Country) -> &'static str {
    match c {
        Country::Brazil => "gov.br",
        Country::Egypt => "gov.eg",
        Country::UnitedKingdom => "gov.uk",
        Country::Indonesia => "go.id",
        Country::India => "gov.in",
        Country::Japan => "go.jp",
        Country::Nigeria => "gov.ng",
        Country::SouthAfrica => "gov.za",
        Country::China => "gov.cn",
        _ => "gov",
    }
}

fn edu_tld(c: Country) -> &'static str {
    match c {
        Country::Brazil => "edu.br",
        Country::Egypt => "edu.eg",
        Country::UnitedKingdom => "ac.uk",
        Country::Indonesia => "ac.id",
        Country::India => "ac.in",
        Country::Japan => "ac.jp",
        Country::Nigeria => "edu.ng",
        Country::SouthAfrica => "ac.za",
        Country::China => "edu.cn",
        _ => "edu",
    }
}

/// Stateful unique-name generator.
#[derive(Debug)]
pub struct NameGenerator {
    // topple-lint: allow(string-set): world-generation uniqueness set while minting names, not a result path
    used: HashSet<String>,
    counter: u64,
}

impl NameGenerator {
    /// Creates an empty generator.
    pub fn new() -> Self {
        NameGenerator {
            used: HashSet::new(),
            counter: 0,
        }
    }

    /// Number of names minted so far.
    pub fn minted(&self) -> usize {
        self.used.len()
    }

    /// Mints a unique registrable domain for a site of the given category and
    /// home country. `is_global` sites use generic TLDs; blogs sometimes land
    /// on private registry suffixes.
    #[allow(clippy::expect_used)]
    pub fn mint(
        &mut self,
        rng: &mut SmallRng,
        category: Category,
        home: Country,
        is_global: bool,
    ) -> DomainName {
        let label = self.pick_label(rng, category);
        let suffix = self.pick_suffix(rng, category, home, is_global);
        let base = format!("{label}.{suffix}");
        let name = if self.used.contains(&base) {
            loop {
                self.counter += 1;
                let candidate = format!("{label}{}.{suffix}", self.counter);
                if !self.used.contains(&candidate) {
                    break candidate;
                }
            }
        } else {
            base
        };
        self.used.insert(name.clone());
        // topple-lint: allow(unwrap): labels come from fixed lowercase-ASCII word tables
        DomainName::new(&name).expect("generated names are valid by construction")
    }

    fn pick_label(&self, rng: &mut SmallRng, category: Category) -> String {
        let adj = ADJECTIVES[rng.random_range(0..ADJECTIVES.len())];
        let noun = NOUNS[rng.random_range(0..NOUNS.len())];
        // A third of names get a category-flavoured word instead of the noun.
        let hint = match category {
            Category::News => Some("news"),
            Category::Shopping => Some("shop"),
            Category::Technology => Some("tech"),
            Category::Gaming => Some("game"),
            _ => None,
        };
        if let Some(key) = hint {
            if rng.random::<f64>() < 0.35 {
                let pool = CATEGORY_HINTS
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map(|(_, words)| *words)
                    .unwrap_or(NOUNS);
                let w = pool[rng.random_range(0..pool.len())];
                return format!("{adj}{w}");
            }
        }
        if rng.random::<f64>() < 0.5 {
            format!("{adj}{noun}")
        } else {
            format!("{adj}-{noun}")
        }
    }

    fn pick_suffix(
        &self,
        rng: &mut SmallRng,
        category: Category,
        home: Country,
        is_global: bool,
    ) -> &'static str {
        match category {
            Category::Government => return gov_tld(home),
            Category::Education => return edu_tld(home),
            Category::Blog if rng.random::<f64>() < 0.3 => {
                return PRIVATE_SUFFIXES[rng.random_range(0..PRIVATE_SUFFIXES.len())];
            }
            _ => {}
        }
        if is_global || rng.random::<f64>() < 0.25 {
            GENERIC_TLDS[rng.random_range(0..GENERIC_TLDS.len())]
        } else {
            let pool = country_tlds(home);
            pool[rng.random_range(0..pool.len())]
        }
    }
}

impl Default for NameGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{substream, Stream};
    use topple_psl::PublicSuffixList;

    #[test]
    fn names_are_unique_and_valid() {
        let mut rng = substream(5, Stream::Names, 0);
        let mut gen = NameGenerator::new();
        let psl = PublicSuffixList::builtin();
        let mut seen = HashSet::new();
        for i in 0..5_000 {
            let cat = Category::ALL[i % Category::COUNT];
            let home = Country::ALL[i % Country::COUNT];
            let d = gen.mint(&mut rng, cat, home, i % 3 == 0);
            assert!(seen.insert(d.as_str().to_owned()), "duplicate {d}");
            // Every minted name is its own registrable domain under the PSL.
            let reg = psl.registrable_domain(&d).unwrap();
            assert_eq!(reg, d, "{d} is not a registrable domain");
        }
        assert_eq!(gen.minted(), 5_000);
    }

    #[test]
    fn government_sites_use_gov_suffixes() {
        let mut rng = substream(6, Stream::Names, 0);
        let mut gen = NameGenerator::new();
        for _ in 0..50 {
            let d = gen.mint(&mut rng, Category::Government, Country::Japan, false);
            assert!(d.as_str().ends_with(".go.jp"), "{d}");
        }
    }

    #[test]
    fn deterministic_given_same_rng_stream() {
        let mut a = NameGenerator::new();
        let mut b = NameGenerator::new();
        let mut ra = substream(9, Stream::Names, 3);
        let mut rb = substream(9, Stream::Names, 3);
        for i in 0..200 {
            let cat = Category::ALL[i % Category::COUNT];
            let da = a.mint(&mut ra, cat, Country::Brazil, false);
            let db = b.mint(&mut rb, cat, Country::Brazil, false);
            assert_eq!(da, db);
        }
    }
}
