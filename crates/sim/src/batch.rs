//! Epoch-2 batched draw primitives: block-filled uniform buffers.
//!
//! Epoch 1 interleaves every sampler with the RNG core — each `chance` or
//! `poisson` call steps xoshiro, and Knuth's Poisson loop steps it `~λ`
//! times. Epoch 2 decouples the two: a [`UniformBlock`] fills a fixed slab
//! of raw 64-bit words from the client's substream in one tight loop, and
//! the samplers consume words from the slab. A word maps to a unit uniform
//! by exactly the vendored-`rand` conversion ([`rng::unit_f64`]), so the
//! block replays the substream's `f64` sequence bit-for-bit — the property
//! the proptests below pin ("same substream ⇒ same bytes"). On top of the
//! slab, the samplers take fixed word counts: Poisson by single-uniform CDF
//! inversion below `λ = 30` and the continuity-corrected normal
//! approximation above (the same split the scalar sampler uses), and the
//! alias draw by a branchless multiply-high index instead of Lemire
//! rejection.
//!
//! Leftover words at the end of a client scope are discarded by
//! [`UniformBlock::reset`]; substreams are independent, so dropping tail
//! words costs nothing but the fill.

use rand::rngs::SmallRng;
use rand::RngCore;

use crate::rng::{normal_from_uniforms, poisson_from_normal, poisson_from_uniform, unit_f64};

/// Words per refill. One cache-friendly slab amortizes the RNG-core calls;
/// 128 words cover a typical page load's draw budget several times over.
pub const BLOCK_WORDS: usize = 128;

/// A refillable slab of raw RNG words feeding the epoch-2 samplers.
///
/// The buffer is allocated once (inside `TrafficScratch`) and refilled in
/// place, keeping the traffic hot path allocation-free.
#[derive(Debug)]
pub struct UniformBlock {
    buf: Vec<u64>,
    pos: usize,
}

impl Default for UniformBlock {
    fn default() -> Self {
        Self::new()
    }
}

impl UniformBlock {
    /// Creates an empty block (first take triggers a refill).
    pub fn new() -> Self {
        UniformBlock {
            buf: vec![0; BLOCK_WORDS],
            pos: BLOCK_WORDS,
        }
    }

    /// Discards any unconsumed words, so the next take refills from the
    /// current stream. Call when switching substreams (new client scope).
    #[inline]
    pub fn reset(&mut self) {
        self.pos = self.buf.len();
    }

    /// Refills the slab from `rng` in one pass.
    fn refill(&mut self, rng: &mut SmallRng) {
        for slot in &mut self.buf {
            *slot = rng.next_u64();
        }
        self.pos = 0;
    }

    /// One raw 64-bit word.
    #[inline]
    pub fn take_word(&mut self, rng: &mut SmallRng) -> u64 {
        if self.pos == self.buf.len() {
            self.refill(rng);
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    /// One unit uniform in `[0, 1)` — bit-identical to drawing `f64` from
    /// the same substream directly.
    #[inline]
    pub fn take_f64(&mut self, rng: &mut SmallRng) -> f64 {
        unit_f64(self.take_word(rng))
    }

    /// Bernoulli trial (one word).
    #[inline]
    pub fn take_chance(&mut self, rng: &mut SmallRng, p: f64) -> bool {
        self.take_f64(rng) < p
    }

    /// Uniform index in `0..n` via multiply-high (branchless; one word).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n == 0`.
    #[inline]
    pub fn take_index(&mut self, rng: &mut SmallRng, n: usize) -> usize {
        debug_assert!(n > 0);
        let w = self.take_word(rng);
        // topple-lint: allow(lossy-cast): mulhi of a word by n is always < n, which fits usize
        ((u128::from(w) * n as u128) >> 64) as usize
    }

    /// Standard-normal deviate via Box–Muller (two words).
    #[inline]
    pub fn take_normal(&mut self, rng: &mut SmallRng) -> f64 {
        let u1 = self.take_f64(rng);
        let u2 = self.take_f64(rng);
        normal_from_uniforms(u1, u2)
    }

    /// Log-normal deviate (two words).
    #[inline]
    pub fn take_log_normal(&mut self, rng: &mut SmallRng, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.take_normal(rng)).exp()
    }

    /// Poisson sample: CDF inversion (one word) below `λ = 30`, normal
    /// approximation (two words) above — the scalar sampler's split.
    #[inline]
    pub fn take_poisson(&mut self, rng: &mut SmallRng, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0);
        if lambda <= 0.0 {
            0
        } else if lambda < 30.0 {
            poisson_from_uniform(self.take_f64(rng), lambda)
        } else {
            poisson_from_normal(lambda, self.take_normal(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{substream, Stream};
    use rand::Rng;

    #[test]
    fn block_replays_the_substream_words_exactly() {
        // Words through the block == words drawn directly, across several
        // refills and a mid-stream reset (reset discards the tail but the
        // refill boundary itself must not reorder anything).
        let mut via_block = substream(3, Stream::TrafficClient, 42);
        let mut direct = substream(3, Stream::TrafficClient, 42);
        let mut block = UniformBlock::new();
        for _ in 0..3 * BLOCK_WORDS {
            let w = block.take_word(&mut via_block);
            let d: u64 = direct.random();
            assert_eq!(w, d);
        }
    }

    #[test]
    fn take_f64_is_bit_identical_to_scalar_uniforms() {
        let mut via_block = substream(4, Stream::TrafficClient, 7);
        let mut direct = substream(4, Stream::TrafficClient, 7);
        let mut block = UniformBlock::new();
        for _ in 0..500 {
            let f = block.take_f64(&mut via_block);
            let d: f64 = direct.random();
            assert_eq!(f.to_bits(), d.to_bits());
        }
    }

    #[test]
    fn reset_discards_only_the_tail() {
        let mut rng = substream(5, Stream::TrafficClient, 0);
        let mut block = UniformBlock::new();
        let _ = block.take_word(&mut rng); // word 0 of block 1
        block.reset();
        // After reset the next take refills: it must continue the stream
        // (words BLOCK_WORDS..), not replay discarded buffer content.
        let next = block.take_word(&mut rng);
        let mut direct = substream(5, Stream::TrafficClient, 0);
        let expected = (0..=BLOCK_WORDS)
            .map(|_| direct.random::<u64>())
            .last()
            .unwrap_or(0);
        assert_eq!(next, expected);
    }

    #[test]
    fn take_index_is_uniform_and_in_range() {
        let mut rng = substream(6, Stream::TrafficClient, 1);
        let mut block = UniformBlock::new();
        let n = 10;
        let mut counts = [0u32; 10];
        let draws = 100_000;
        for _ in 0..draws {
            let i = block.take_index(&mut rng, n);
            assert!(i < n);
            counts[i] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = f64::from(c) / f64::from(draws);
            assert!((share - 0.1).abs() < 0.01, "index {i}: share {share}");
        }
    }

    #[test]
    fn batched_poisson_matches_scalar_moments() {
        let mut rng = substream(7, Stream::TrafficClient, 2);
        let mut block = UniformBlock::new();
        for lambda in [0.0, 1.0, 6.5, 29.9, 30.0, 120.0] {
            let n = 50_000;
            let samples: Vec<f64> = (0..n)
                .map(|_| {
                    // topple-lint: allow(lossy-cast): counts ~lambda fit f64 exactly
                    block.take_poisson(&mut rng, lambda) as f64
                })
                .collect();
            let mean = samples.iter().sum::<f64>() / f64::from(n);
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
            let tol = 0.05 + lambda * 0.015;
            assert!((mean - lambda).abs() < tol, "λ={lambda}: mean {mean}");
            if lambda > 0.0 {
                assert!((var / lambda - 1.0).abs() < 0.06, "λ={lambda}: var {var}");
            }
        }
    }

    #[test]
    fn batched_normal_matches_scalar_bits_on_aligned_streams() {
        // take_normal consumes two uniforms exactly like rng::normal; on the
        // same substream the outputs are bit-identical.
        let mut via_block = substream(8, Stream::TrafficClient, 3);
        let mut direct = substream(8, Stream::TrafficClient, 3);
        let mut block = UniformBlock::new();
        for _ in 0..200 {
            let a = block.take_normal(&mut via_block);
            let b = crate::rng::normal(&mut direct);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
