//! A deterministic synthetic web ecosystem.
//!
//! The paper's analyses consume privileged data: Cloudflare's server-side
//! request logs and Chrome's client telemetry. This crate is the substitution
//! that makes the study reproducible offline: a generative model of the web
//! with explicit ground truth, emitting the *same kinds of logs* those
//! parties hold.
//!
//! # Architecture
//!
//! * [`WorldConfig`] → [`World::generate`] builds the static universe:
//!   [`Site`]s (Zipf ground-truth popularity, categories, country/platform
//!   audience mixes, FQDNs, CDN hosting, third-party wiring), [`Client`]s
//!   (country, platform, browser, IP/NAT, resolver choice, panel and
//!   telemetry membership), and the hyperlink [`LinkGraph`].
//! * [`World::simulate_day_into`] streams one day of traffic — page loads
//!   with their HTTP request expansion, third-party fetches, and background
//!   DNS noise — into an [`EventSink`], one event at a time, with all
//!   per-day working state held in a reusable [`TrafficScratch`].
//!   [`World::simulate_day`] materializes the same stream into a
//!   [`DayTraffic`] for consumers that want whole-day buffers. Days derive
//!   independent RNG substreams from `(seed, day)`, so simulation is
//!   reproducible and parallelizable.
//! * Observer crates (`topple-vantage`) fold these streams into the metrics
//!   the paper derives from Cloudflare and Chrome; ground-truth weights stay
//!   private to the generator.
//!
//! # Bias mechanisms modelled
//!
//! Every bias the paper reports has an explicit mechanism here: private
//! browsing hides adult traffic from extension panels; enterprise NAT and a
//! US-heavy customer base shape the Umbrella resolver's view; China-only
//! vantage shapes Secrank; link propensity shapes Majestic; opt-in Chrome
//! telemetry with a privacy threshold shapes CrUX; subresource-count
//! variation makes request-based metrics disagree with root-page loads.
//!
//! ```
//! use topple_sim::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::tiny(42)).unwrap();
//! let day = world.simulate_day(0);
//! assert!(!day.page_loads.is_empty());
//! // Same seed, same traffic:
//! let again = World::generate(WorldConfig::tiny(42)).unwrap().simulate_day(0);
//! assert_eq!(day.page_loads.len(), again.page_loads.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod batch;
pub mod client;
pub mod config;
pub mod date;
pub mod ids;
pub mod linkgraph;
pub mod namegen;
pub mod rng;
pub mod site;
pub mod soa;
pub mod taxonomy;
pub mod traffic;
pub mod wire;
pub mod world;

pub use batch::UniformBlock;
pub use client::{Client, Resolver};
pub use config::{Mechanisms, WorldConfig};
pub use date::{Date, Weekday};
pub use ids::{ClientId, SiteId};
pub use linkgraph::LinkGraph;
pub use rng::{DETERMINISM_EPOCH, SUPPORTED_EPOCHS};
pub use site::{HostKind, Site, SiteHost};
pub use taxonomy::{Browser, Category, Country, Platform};
pub use traffic::{
    BackgroundQuery, CollectSink, DayTraffic, EventSink, PageLoad, ThirdPartyFetch, TrafficScratch,
};
pub use world::{World, WorldError};
