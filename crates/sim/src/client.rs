//! The simulated client population.

use crate::ids::ClientId;
use crate::taxonomy::{Browser, Country, Platform};

/// Which recursive resolver a client's DNS queries reach.
///
/// Only two resolvers in the simulation publish popularity data: the
/// Umbrella-style enterprise resolver and the Chinese voting resolver behind
/// Secrank. Everyone else uses an unobserved ISP resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolver {
    /// Cisco Umbrella-style resolver (enterprise-heavy, US-centric base).
    Umbrella,
    /// The Chinese resolver whose logs feed the Secrank voting algorithm.
    ChinaVoting,
    /// Ordinary ISP resolver — not observed by any top list.
    Isp,
}

/// One simulated web client (a person plus their primary device).
#[derive(Debug, Clone)]
pub struct Client {
    /// Dense id.
    pub id: ClientId,
    /// Country the client browses from.
    pub country: Country,
    /// Device platform.
    pub platform: Platform,
    /// Browser family.
    pub browser: Browser,
    /// Public (post-NAT) IPv4 address as a u32. Enterprise clients share
    /// egress IPs with colleagues; consumers mostly have distinct addresses.
    pub ip: u32,
    /// Whether this is a managed enterprise workstation (weekday-heavy
    /// browsing; candidate for the Umbrella resolver).
    pub enterprise: bool,
    /// Mean page loads per day for this client.
    pub activity: f32,
    /// Where the client's DNS queries land.
    pub resolver: Resolver,
    /// Chrome user who opted into telemetry/history sync (feeds CrUX).
    pub chrome_optin: bool,
    /// Carries the Alexa-style measurement browser extension.
    pub alexa_panelist: bool,
}

impl Client {
    /// Daily activity multiplier for a given weekday class.
    ///
    /// Enterprise clients browse at work (weekday-heavy); consumers browse
    /// slightly more on weekends.
    pub fn day_factor(&self, weekend: bool) -> f64 {
        day_factor_for(self.enterprise, weekend)
    }
}

/// Daily activity multiplier by `(enterprise, weekend)` — the shared
/// constants behind [`Client::day_factor`], also used by the epoch-2
/// generator, which reads the enterprise bit from the SoA flag byte instead
/// of a `Client` record.
#[inline]
pub fn day_factor_for(enterprise: bool, weekend: bool) -> f64 {
    match (enterprise, weekend) {
        (true, false) => 1.20,
        (true, true) => 0.45,
        (false, false) => 0.95,
        (false, true) => 1.12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_clients_are_weekday_heavy() {
        let mut c = Client {
            id: ClientId(0),
            country: Country::UnitedStates,
            platform: Platform::Windows,
            browser: Browser::Chrome,
            ip: 1,
            enterprise: true,
            activity: 30.0,
            resolver: Resolver::Umbrella,
            chrome_optin: false,
            alexa_panelist: false,
        };
        assert!(c.day_factor(false) > c.day_factor(true));
        c.enterprise = false;
        assert!(c.day_factor(false) < c.day_factor(true));
    }
}
