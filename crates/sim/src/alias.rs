//! Walker's alias method for O(1) sampling from large discrete distributions.
//!
//! The traffic generator draws hundreds of thousands of site visits per
//! simulated day from ~100 K-entry popularity distributions conditioned on
//! (country, platform class, weekday). The alias method makes each draw two
//! RNG calls and one table lookup.

use rand::rngs::SmallRng;
use rand::Rng;
use topple_stats::cast;

/// A prebuilt alias table over `0..n` with probabilities proportional to the
/// construction weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite value,
    /// or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..cast::u32_from_usize(n)).collect();
        // Partition indices into under- and over-full buckets.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(cast::u32_from_usize(i));
            } else {
                large.push(cast::u32_from_usize(i));
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[cast::usize_from_u32(s)] = l;
            // Donate mass from l to fill s up to 1.
            prob[cast::usize_from_u32(l)] -= 1.0 - prob[cast::usize_from_u32(s)];
            if prob[cast::usize_from_u32(l)] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are within floating-point noise of 1.
        for &i in small.iter().chain(large.iter()) {
            prob[cast::usize_from_u32(i)] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u32 {
        let n = self.prob.len();
        let i = rng.random_range(0..n);
        if rng.random::<f64>() < self.prob[i] {
            cast::u32_from_usize(i)
        } else {
            self.alias[i]
        }
    }

    /// Draws one index from two raw RNG words (the epoch-2 batched path).
    ///
    /// The bucket pick uses a branchless multiply-high instead of
    /// [`sample`]'s Lemire rejection loop — a different but equally uniform
    /// map from words to buckets, which is exactly the kind of draw-sequence
    /// change the epoch bump legalizes. The acceptance coin reuses the
    /// canonical word→f64 conversion.
    ///
    /// [`sample`]: AliasTable::sample
    #[inline]
    pub fn sample_words(&self, w1: u64, w2: u64) -> u32 {
        let n = self.prob.len();
        // topple-lint: allow(lossy-cast): mulhi of a word by n is always < n, which fits usize
        let i = ((u128::from(w1) * n as u128) >> 64) as usize;
        if crate::rng::unit_f64(w2) < self.prob[i] {
            cast::u32_from_usize(i)
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{substream, Stream};

    #[test]
    fn matches_expected_frequencies() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = substream(1, Stream::Traffic, 0);
        let n = 400_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.005,
                "index {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn word_sampling_matches_expected_frequencies() {
        use rand::Rng;
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = substream(1, Stream::TrafficClient, 0);
        let n = 400_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            let w1: u64 = rng.random();
            let w2: u64 = rng.random();
            counts[table.sample_words(w1, w2) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = f64::from(counts[i]) / f64::from(n);
            assert!(
                (observed - expected).abs() < 0.005,
                "index {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn word_sampling_never_emits_zero_weight_indices() {
        use rand::Rng;
        let weights = [0.0, 1.0, 0.0, 1.0];
        let table = AliasTable::new(&weights);
        let mut rng = substream(2, Stream::TrafficClient, 0);
        for _ in 0..10_000 {
            let s = table.sample_words(rng.random(), rng.random());
            assert!(s == 1 || s == 3, "sampled zero-weight index {s}");
        }
    }

    #[test]
    fn handles_zero_weights() {
        let weights = [0.0, 1.0, 0.0, 1.0];
        let table = AliasTable::new(&weights);
        let mut rng = substream(2, Stream::Traffic, 0);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight index {s}");
        }
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = substream(3, Stream::Traffic, 0);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_weights_are_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_weights_are_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weights_are_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn non_finite_weights_are_rejected() {
        let _ = AliasTable::new(&[1.0, f64::NAN]);
    }

    #[test]
    fn single_tiny_weight_normalizes_to_certainty() {
        // One subnormal entry: normalization divides by the total, so even a
        // weight at the floating-point floor must sample with probability 1.
        let table = AliasTable::new(&[f64::MIN_POSITIVE]);
        let mut rng = substream(5, Stream::Traffic, 0);
        for _ in 0..1000 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_head_and_tail_weights_never_sample() {
        // Zeros at both boundaries of the table: the small/large worklists
        // start and end on donated mass, covering the leftover-bucket path.
        let weights = [0.0, 3.0, 0.0, 0.0, 1.0, 0.0];
        let table = AliasTable::new(&weights);
        assert_eq!(table.len(), weights.len());
        let mut rng = substream(6, Stream::Traffic, 0);
        let mut counts = [0u32; 6];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            if weights[i] == 0.0 {
                assert_eq!(c, 0, "zero-weight index {i} was sampled");
            } else {
                assert!(c > 0, "positive-weight index {i} never sampled");
            }
        }
        let head = f64::from(counts[1]) / 40_000.0;
        assert!((head - 0.75).abs() < 0.02, "head share drifted: {head}");
    }

    #[test]
    fn heavily_skewed_distribution() {
        // A Zipf-like head/tail split: index 0 gets ~91% of the mass.
        let mut weights = vec![1000.0];
        weights.extend(std::iter::repeat_n(1.0, 99));
        let table = AliasTable::new(&weights);
        let mut rng = substream(4, Stream::Traffic, 0);
        let n = 100_000;
        let head = (0..n).filter(|_| table.sample(&mut rng) == 0).count();
        let expected = 1000.0 / 1099.0;
        assert!((head as f64 / n as f64 - expected).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn rejects_empty() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn rejects_all_zero() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
