//! The Secrank-style list: voting over resolver logs (Xie et al. \[34\]).
//!
//! In the published design, each client IP "votes" for domains based on its
//! request volume and frequency of access, and IPs are weighted by the
//! diversity of domains they query and their total volume, making the list
//! stable and manipulation-resistant. We implement the same structure —
//! per-IP trust × per-domain vote, summed — in a documented simplified form:
//!
//! * `trust(ip) = ln(1 + distinct_domains) / (1 + ln(1 + total_queries))` —
//!   diverse IPs earn trust; single-purpose heavy hitters (monitoring rigs,
//!   open proxies) are damped.
//! * `vote(ip, d) = √queries(ip, d) × (days_active(ip, d) / window)` —
//!   sustained, repeated interest beats volume spikes.
//!
//! The vantage is a Chinese resolver, so the list inherits a strong
//! geographic skew — exactly the paper's finding.

use std::collections::BTreeMap;

use topple_sim::{SiteId, World};
use topple_vantage::DnsVantage;

use crate::model::{ListSource, RankedList};

/// Builds the Secrank-style list from the China resolver's monthly votes.
///
/// `window_days` is the number of ingested days (for frequency weighting).
pub fn build(
    world: &World,
    resolver: &DnsVantage,
    window_days: usize,
    max_len: usize,
) -> RankedList {
    let votes = resolver.votes();
    // Pass 1: per-IP totals for trust computation.
    let mut ip_domains: BTreeMap<u32, u32> = BTreeMap::new();
    let mut ip_queries: BTreeMap<u32, u64> = BTreeMap::new();
    for ((ip, _site), cell) in votes {
        *ip_domains.entry(*ip).or_default() += 1;
        *ip_queries.entry(*ip).or_default() += u64::from(cell.queries);
    }
    let trust: BTreeMap<u32, f64> = ip_domains
        .iter()
        .map(|(ip, &d)| {
            let q = ip_queries[ip] as f64;
            (*ip, (1.0 + f64::from(d)).ln() / (1.0 + (1.0 + q).ln()))
        })
        .collect();

    // Pass 2: weighted votes per domain. Accumulate in sorted key order —
    // floating-point addition is not associative, and HashMap iteration
    // order varies per instance, so an unsorted fold would make the list
    // nondeterministic in the last ulp (and therefore in tie ordering).
    let window = window_days.max(1) as f64;
    let mut ordered: Vec<(&(u32, SiteId), &topple_vantage::dns::VoteCell)> = votes.iter().collect();
    ordered.sort_by_key(|(k, _)| **k);
    let mut scores: BTreeMap<SiteId, f64> = BTreeMap::new();
    for ((ip, site), cell) in ordered {
        let days_active = f64::from(cell.day_mask.count_ones());
        let vote = (f64::from(cell.queries)).sqrt() * (days_active / window);
        *scores.entry(*site).or_default() += trust[ip] * vote;
    }

    let mut scored: Vec<(SiteId, f64)> = scores.into_iter().collect();
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1).then_with(|| {
            world.sites[a.0.index()]
                .domain
                .cmp(&world.sites[b.0.index()].domain)
        })
    });
    scored.truncate(max_len);
    RankedList::from_sorted_names(
        ListSource::Secrank,
        scored
            .into_iter()
            .map(|(site, _)| world.sites[site.index()].domain.as_str().to_owned())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Country, Resolver, WorldConfig};

    fn setup() -> (World, DnsVantage) {
        let w = World::generate(WorldConfig::small(111)).unwrap();
        let mut v = DnsVantage::new(Resolver::ChinaVoting);
        for d in 0..5 {
            let t = w.simulate_day(d);
            v.ingest_day(&w, &t);
        }
        (w, v)
    }

    #[test]
    fn list_is_china_skewed() {
        let (w, v) = setup();
        let l = build(&w, &v, 5, usize::MAX);
        assert!(!l.is_empty());
        let k = 100.min(l.len());
        let china_home = l
            .top_names(k)
            .filter(|n| {
                let d = n.parse().unwrap();
                w.site_by_domain(&d).unwrap().home_country == Country::China
            })
            .count();
        assert!(
            china_home as f64 / k as f64 > 0.5,
            "Secrank head should be Chinese-home-heavy: {china_home}/{k}"
        );
    }

    #[test]
    fn deterministic() {
        let (w, v) = setup();
        let a = build(&w, &v, 5, 500);
        let b = build(&w, &v, 5, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn sustained_interest_beats_spikes() {
        // Construct a synthetic vote table via a real vantage is complex;
        // instead verify the frequency term monotonically: more active days,
        // higher vote, all else equal.
        let vote = |queries: f64, days: f64, window: f64| queries.sqrt() * (days / window);
        assert!(vote(16.0, 5.0, 28.0) > vote(16.0, 1.0, 28.0));
        // A single-day spike of 100 queries loses to 10 queries on 10 days.
        assert!(vote(100.0, 1.0, 28.0) < vote(10.0, 10.0, 28.0));
    }
}
