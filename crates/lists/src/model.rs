//! Top-list data model: ranked lists, rank-magnitude-bucketed lists, CSV I/O.

use std::fmt;

/// Which published list a dataset models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ListSource {
    /// Alexa Top 1M (browser-extension panel).
    Alexa,
    /// Cisco Umbrella 1M (DNS names by unique client IPs).
    Umbrella,
    /// Majestic Million (backlinks).
    Majestic,
    /// Secrank (voting over Chinese resolver logs).
    Secrank,
    /// Tranco (Dowdall aggregation of Alexa+Umbrella+Majestic).
    Tranco,
    /// Trexa (Tranco/Alexa interleave).
    Trexa,
    /// Chrome UX Report (origins, rank-magnitude buckets).
    Crux,
}

impl ListSource {
    /// All seven lists in the paper's table order.
    pub const ALL: [ListSource; 7] = [
        ListSource::Alexa,
        ListSource::Majestic,
        ListSource::Secrank,
        ListSource::Tranco,
        ListSource::Trexa,
        ListSource::Umbrella,
        ListSource::Crux,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ListSource::Alexa => "Alexa",
            ListSource::Umbrella => "Umbrella",
            ListSource::Majestic => "Majestic",
            ListSource::Secrank => "Secrank",
            ListSource::Tranco => "Tranco",
            ListSource::Trexa => "Trexa",
            ListSource::Crux => "CrUX",
        }
    }

    /// Whether the list publishes individual ranks (CrUX publishes only
    /// rank-magnitude buckets, so Spearman cannot be computed against it).
    pub fn is_rank_ordered(self) -> bool {
        self != ListSource::Crux
    }
}

impl fmt::Display for ListSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of a ranked list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedEntry {
    /// Rank, 1-based; unique within a list.
    pub rank: u32,
    /// The listed name exactly as published (domain, FQDN, or origin).
    pub name: String,
}

/// A rank-ordered top list (every list except CrUX).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedList {
    /// Which methodology produced the list.
    pub source: ListSource,
    /// Entries sorted by ascending rank; ranks are 1..=len with no gaps.
    pub entries: Vec<RankedEntry>,
}

impl RankedList {
    /// Builds a list from names already sorted best-first, assigning ranks.
    pub fn from_sorted_names(source: ListSource, names: Vec<String>) -> Self {
        let entries = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| RankedEntry {
                rank: i as u32 + 1,
                name,
            })
            .collect();
        RankedList { source, entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The top `k` names in rank order.
    pub fn top_names(&self, k: usize) -> impl Iterator<Item = &str> {
        self.entries.iter().take(k).map(|e| e.name.as_str())
    }

    /// Serializes in the `rank,name` CSV format the real lists publish.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 24);
        for e in &self.entries {
            out.push_str(&format!("{},{}\n", e.rank, e.name));
        }
        out
    }

    /// Parses the `rank,name` CSV format. Lines must be sorted by rank.
    pub fn from_csv(source: ListSource, text: &str) -> Result<Self, ListParseError> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (rank_str, name) = line
                .split_once(',')
                .ok_or(ListParseError::MissingComma { line: i + 1 })?;
            let rank: u32 = rank_str
                .trim()
                .parse()
                .map_err(|_| ListParseError::BadRank { line: i + 1 })?;
            if let Some(last) = entries.last() {
                let last: &RankedEntry = last;
                if rank <= last.rank {
                    return Err(ListParseError::OutOfOrder { line: i + 1 });
                }
            }
            entries.push(RankedEntry {
                rank,
                name: name.trim().to_owned(),
            });
        }
        Ok(RankedList { source, entries })
    }
}

/// One entry of a rank-magnitude-bucketed list (CrUX's format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketedEntry {
    /// The listed origin, as published (`https://example.com`).
    pub name: String,
    /// The rank-magnitude bucket: the smallest of {1K, 10K, …} (scaled to the
    /// world) the origin falls into.
    pub bucket: u32,
}

/// A rank-magnitude-bucketed list (CrUX).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketedList {
    /// Which methodology produced the list.
    pub source: ListSource,
    /// Entries sorted by ascending bucket (order within a bucket is
    /// unspecified, as in the real dataset).
    pub entries: Vec<BucketedEntry>,
}

impl BucketedList {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All names whose bucket is at most `k`.
    pub fn names_within(&self, k: u32) -> impl Iterator<Item = &str> {
        self.entries
            .iter()
            .filter(move |e| e.bucket <= k)
            .map(|e| e.name.as_str())
    }

    /// Serializes as `origin,bucket` CSV (the CrUX BigQuery export shape).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 32);
        for e in &self.entries {
            out.push_str(&format!("{},{}\n", e.name, e.bucket));
        }
        out
    }
}

/// A top list in either publication format.
#[derive(Debug, Clone)]
pub enum TopList {
    /// Individually ranked (Alexa, Umbrella, Majestic, Secrank, Tranco, Trexa).
    Ranked(RankedList),
    /// Rank-magnitude bucketed (CrUX).
    Bucketed(BucketedList),
}

impl TopList {
    /// The list's source.
    pub fn source(&self) -> ListSource {
        match self {
            TopList::Ranked(l) => l.source,
            TopList::Bucketed(l) => l.source,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            TopList::Ranked(l) => l.len(),
            TopList::Bucketed(l) => l.len(),
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// CSV parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListParseError {
    /// A line had no comma separator.
    MissingComma {
        /// 1-based line number.
        line: usize,
    },
    /// A rank failed to parse as an integer.
    BadRank {
        /// 1-based line number.
        line: usize,
    },
    /// Ranks were not strictly increasing.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ListParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ListParseError::MissingComma { line } => write!(f, "line {line}: missing comma"),
            ListParseError::BadRank { line } => write!(f, "line {line}: unparseable rank"),
            ListParseError::OutOfOrder { line } => write!(f, "line {line}: ranks out of order"),
        }
    }
}

impl std::error::Error for ListParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_list_roundtrips_csv() {
        let l = RankedList::from_sorted_names(
            ListSource::Alexa,
            vec!["a.com".into(), "b.net".into(), "c.org".into()],
        );
        let csv = l.to_csv();
        assert_eq!(csv, "1,a.com\n2,b.net\n3,c.org\n");
        let back = RankedList::from_csv(ListSource::Alexa, &csv).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn csv_errors() {
        assert_eq!(
            RankedList::from_csv(ListSource::Alexa, "1 a.com"),
            Err(ListParseError::MissingComma { line: 1 })
        );
        assert_eq!(
            RankedList::from_csv(ListSource::Alexa, "x,a.com"),
            Err(ListParseError::BadRank { line: 1 })
        );
        assert_eq!(
            RankedList::from_csv(ListSource::Alexa, "2,a.com\n1,b.com"),
            Err(ListParseError::OutOfOrder { line: 2 })
        );
    }

    #[test]
    fn top_names_truncates() {
        let l = RankedList::from_sorted_names(
            ListSource::Tranco,
            (0..10).map(|i| format!("s{i}.com")).collect(),
        );
        assert_eq!(
            l.top_names(3).collect::<Vec<_>>(),
            vec!["s0.com", "s1.com", "s2.com"]
        );
        assert_eq!(l.top_names(99).count(), 10);
    }

    #[test]
    fn bucketed_names_within() {
        let l = BucketedList {
            source: ListSource::Crux,
            entries: vec![
                BucketedEntry {
                    name: "https://a.com".into(),
                    bucket: 100,
                },
                BucketedEntry {
                    name: "https://b.com".into(),
                    bucket: 1000,
                },
                BucketedEntry {
                    name: "https://c.com".into(),
                    bucket: 10000,
                },
            ],
        };
        assert_eq!(l.names_within(1000).count(), 2);
        assert_eq!(l.names_within(50).count(), 0);
        assert!(!ListSource::Crux.is_rank_ordered());
    }

    #[test]
    fn source_metadata() {
        assert_eq!(ListSource::ALL.len(), 7);
        assert!(ListSource::Alexa.is_rank_ordered());
        assert_eq!(ListSource::Crux.to_string(), "CrUX");
    }
}
