//! The Cisco Umbrella-style list: DNS names ranked by unique client IPs.
//!
//! Umbrella ranks *queried names* — FQDNs, not websites — "using the number
//! of unique client IPs visiting each domain, relative to the sum of all
//! requests to all domains" \[33\]. Two properties matter for the paper's
//! findings and are reproduced here:
//!
//! * the list mixes website FQDNs with infrastructure names and even bare
//!   TLD-level names, and
//! * score ties (small integer unique-IP counts in the tail) are broken
//!   **alphabetically**, producing the long sorted runs that wreck Spearman
//!   correlations \[25\].

use topple_sim::World;
use topple_vantage::DnsVantage;

use crate::model::{ListSource, RankedList};

/// Builds the Umbrella-style daily list for `day_index`.
///
/// `window` is the number of trailing days of resolver logs folded into the
/// snapshot. The real list is computed from roughly two days of data; at
/// simulation scale a slightly longer window compensates for the sampling
/// noise that the production system's enormous client base absorbs. Scores
/// stay integral (summed unique-IP counts), so tie bands — broken
/// alphabetically, as observed of the real list \[25\] — survive windowing.
pub fn build_daily(
    world: &World,
    resolver: &DnsVantage,
    day_index: usize,
    window: usize,
    max_len: usize,
) -> RankedList {
    use std::collections::BTreeMap;
    let start = (day_index + 1).saturating_sub(window.max(1));
    let mut ips: BTreeMap<topple_vantage::QueriedName, u64> = BTreeMap::new();
    let mut queries: BTreeMap<topple_vantage::QueriedName, u64> = BTreeMap::new();
    let mut total_q = 0u64;
    for d in start..=day_index {
        let day = resolver.day(d);
        total_q += day.total_queries();
        for (name, stats) in day.names() {
            *ips.entry(*name).or_default() += u64::from(stats.unique_ips);
            *queries.entry(*name).or_default() += stats.queries;
        }
    }
    let total_q = total_q.max(1) as f64;
    // Score = unique client IPs, weighted against total query volume: the
    // published formula mixes both, with IP breadth dominating.
    let mut scored: Vec<(String, f64)> = ips
        .into_iter()
        .map(|(name, ip_count)| {
            let q = queries.get(&name).copied().unwrap_or(0) as f64;
            let score = ip_count as f64 + 0.05 * (q / total_q) * 1_000.0;
            (DnsVantage::name_text(world, name), score)
        })
        .collect();
    // Descending score; ALPHABETICAL tie-breaking.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(max_len);
    RankedList::from_sorted_names(
        ListSource::Umbrella,
        scored.into_iter().map(|(n, _)| n).collect(),
    )
}

/// Builds a month-representative Umbrella-style list: names ranked by their
/// average daily unique-IP count over every ingested day.
///
/// Set membership is robust (smoothed over the window) but rank fidelity is
/// limited by what the resolver could see: per-zone TTL heterogeneity
/// divides each zone's counts by an arbitrary factor (see the DNS vantage),
/// and residual integer ties break alphabetically.
pub fn build_monthly(world: &World, resolver: &DnsVantage, max_len: usize) -> RankedList {
    use std::collections::BTreeMap;
    let days = resolver.day_count().max(1) as f64;
    let mut sums: BTreeMap<topple_vantage::QueriedName, f64> = BTreeMap::new();
    for d in 0..resolver.day_count() {
        for (name, stats) in resolver.day(d).names() {
            *sums.entry(*name).or_default() += f64::from(stats.unique_ips);
        }
    }
    let mut scored: Vec<(String, f64)> = sums
        .into_iter()
        .map(|(name, score)| (DnsVantage::name_text(world, name), score / days))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(max_len);
    RankedList::from_sorted_names(
        ListSource::Umbrella,
        scored.into_iter().map(|(n, _)| n).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Resolver, WorldConfig};

    fn setup() -> (World, DnsVantage) {
        let w = World::generate(WorldConfig::small(91)).unwrap();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        let t = w.simulate_day(0);
        v.ingest_day(&w, &t);
        (w, v)
    }

    #[test]
    fn list_contains_fqdns_not_just_domains() {
        let (w, v) = setup();
        let l = build_daily(&w, &v, 0, 1, 100_000);
        assert!(!l.is_empty());
        let with_sub = l
            .entries
            .iter()
            .filter(|e| {
                let d: topple_psl::DomainName = match e.name.parse() {
                    Ok(d) => d,
                    Err(_) => return false,
                };
                w.psl.registrable_domain(&d).map(|r| r != d).unwrap_or(true)
            })
            .count();
        assert!(
            with_sub as f64 / l.len() as f64 > 0.4,
            "Umbrella should be FQDN-heavy: {}/{}",
            with_sub,
            l.len()
        );
    }

    #[test]
    fn background_noise_ranks_high() {
        let (w, v) = setup();
        let l = build_daily(&w, &v, 0, 1, 100_000);
        // Names queried by every device daily (NTP, connectivity checks)
        // should appear near the head of the list — far above their (zero)
        // browsing popularity.
        let head: Vec<&str> = l.top_names(100).collect();
        let has_infra = head
            .iter()
            .any(|n| w.background_names.iter().any(|b| b.as_str() == *n));
        assert!(has_infra, "expected background names in the top 100");
    }

    #[test]
    fn monthly_aggregates_days() {
        let w = World::generate(WorldConfig::tiny(92)).unwrap();
        let mut v = DnsVantage::new(Resolver::Umbrella);
        for d in 0..3 {
            let t = w.simulate_day(d);
            v.ingest_day(&w, &t);
        }
        let monthly = build_monthly(&w, &v, 100_000);
        assert!(!monthly.is_empty());
        // Monthly list covers at least as many names as any single day.
        let day0 = build_daily(&w, &v, 0, 1, 100_000);
        assert!(monthly.len() >= day0.len());
    }

    #[test]
    fn ties_are_alphabetical() {
        let (w, v) = setup();
        let l = build_daily(&w, &v, 0, 1, 100_000);
        // Find a run of >= 4 consecutive entries in the tail and verify the
        // alphabetical runs exist (scores there are small integers).
        let tail = &l.entries[l.len().saturating_sub(200)..];
        let mut sorted_runs = 0;
        let mut run = 1;
        for w2 in tail.windows(2) {
            if w2[0].name < w2[1].name {
                run += 1;
                if run >= 4 {
                    sorted_runs += 1;
                }
            } else {
                run = 1;
            }
        }
        assert!(sorted_runs > 0, "expected alphabetical runs in the tail");
    }
}
