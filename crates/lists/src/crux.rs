//! The Chrome UX Report (CrUX) public list.
//!
//! CrUX publishes monthly *rank-magnitude buckets* (top 1K, 10K, 100K, 1M) of
//! web origins, ranked by completed page loads (First Contentful Paint) from
//! opted-in Chrome users, with a privacy threshold on unique visitors \[8, 13\].
//! The bucket magnitudes here are the world's scaled equivalents
//! (`WorldConfig::rank_magnitudes`).

use topple_sim::World;
use topple_vantage::ChromeVantage;

use crate::model::{BucketedEntry, BucketedList, ListSource};

/// Builds the monthly CrUX-style bucketed origin list.
///
/// `magnitudes` must be ascending bucket sizes (e.g. scaled {1K, 10K, 100K,
/// 1M}); origins ranked beyond the largest magnitude are not published.
pub fn build(world: &World, chrome: &ChromeVantage, magnitudes: &[usize]) -> BucketedList {
    assert!(!magnitudes.is_empty(), "need at least one magnitude");
    assert!(
        magnitudes.windows(2).all(|w| w[0] < w[1]),
        "magnitudes must ascend"
    );
    let ranked = chrome.global_completed_list(world.config.crux_privacy_threshold);
    let mut entries = Vec::new();
    for (pos, (origin, _score)) in ranked.iter().enumerate() {
        let Some(&bucket) = magnitudes.iter().find(|&&m| pos < m) else {
            break; // beyond the largest published magnitude
        };
        entries.push(BucketedEntry {
            name: ChromeVantage::origin_text(world, *origin),
            bucket: bucket as u32,
        });
    }
    BucketedList {
        source: ListSource::Crux,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn setup() -> (World, ChromeVantage) {
        let w = World::generate(WorldConfig::small(121)).unwrap();
        let mut v = ChromeVantage::new(&w);
        for d in 0..4 {
            let t = w.simulate_day(d);
            v.ingest_day(&w, &t);
        }
        (w, v)
    }

    #[test]
    fn buckets_ascend_and_nest() {
        let (w, v) = setup();
        let l = build(&w, &v, &[40, 400, 4000]);
        assert!(!l.is_empty());
        let b40 = l.names_within(40).count();
        let b400 = l.names_within(400).count();
        let b4000 = l.names_within(4000).count();
        assert!(b40 <= 40);
        assert!(b40 <= b400 && b400 <= b4000);
        assert!(b400 <= 400);
    }

    #[test]
    fn entries_are_origins() {
        let (w, v) = setup();
        let l = build(&w, &v, &[40, 400]);
        for e in &l.entries {
            assert!(
                e.name.starts_with("https://") || e.name.starts_with("http://"),
                "not an origin: {}",
                e.name
            );
        }
    }

    #[test]
    fn beyond_largest_magnitude_unpublished() {
        let (w, v) = setup();
        let small = build(&w, &v, &[40]);
        assert!(small.len() <= 40);
    }

    #[test]
    #[should_panic(expected = "magnitudes must ascend")]
    fn rejects_unordered_magnitudes() {
        let (w, v) = setup();
        build(&w, &v, &[400, 40]);
    }
}
