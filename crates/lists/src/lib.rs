//! The seven top-list construction methodologies and the list data model.
//!
//! Every list the paper evaluates is built here from the corresponding
//! vantage's output, using its published (or published-as-far-as-known)
//! methodology:
//!
//! | List | Builder | Input vantage | Signal |
//! |---|---|---|---|
//! | Alexa | [`alexa::build_daily`] | extension panel | avg daily visitors × pageviews |
//! | Umbrella | [`umbrella::build_daily`] | Umbrella resolver | unique client IPs per queried name |
//! | Majestic | [`majestic::build`] | crawler | distinct referring domains |
//! | Secrank | [`secrank::build`] | China resolver | diversity-weighted IP voting |
//! | Tranco | [`tranco::build`] | other lists | Dowdall rule over a 30-day window |
//! | Trexa | [`trexa::build`] | Tranco + Alexa | weighted interleave |
//! | CrUX | [`crux::build`] | Chrome telemetry | completed loads, origin buckets |
//!
//! Lists are plain name strings ([`RankedList`] / [`BucketedList`]) — they
//! carry no simulator identifiers, so the evaluation in `topple-core` can
//! only compare them the way the paper could: through PSL normalization
//! ([`mod@normalize`]) and name intersection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexa;
pub mod crux;
pub mod interner;
pub mod majestic;
pub mod model;
pub mod normalize;
pub mod secrank;
pub mod stability;
pub mod tranco;
pub mod trexa;
pub mod umbrella;

pub use interner::{DomainId, DomainTable};
pub use model::{
    BucketedEntry, BucketedList, ListParseError, ListSource, RankedEntry, RankedList, TopList,
};
pub use normalize::{normalize, normalize_bucketed, normalize_ranked, NormalizedList, Normalizer};
pub use stability::{stability, StabilityReport};
