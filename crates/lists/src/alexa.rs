//! The Alexa-style list: browser-extension panel, visitors × pageviews.
//!
//! Alexa's published methodology: rank is "calculated daily based on the
//! average daily visitors and pageviews to every site over the past
//! 3 months" \[3, 6\]. The simulated window is one month, so the daily list for
//! day *d* averages over the trailing `window` days available up to *d* and
//! scores each site by the geometric mean of its average daily visitors and
//! average daily pageviews.

use std::collections::BTreeMap;

use topple_sim::{SiteId, World};
use topple_vantage::PanelVantage;

use crate::model::{ListSource, RankedList};

/// Builds the Alexa-style daily list for `day_index` from panel data.
///
/// `window` limits how many trailing days are averaged (Alexa's three months,
/// scaled to the simulation); `max_len` truncates the published list.
pub fn build_daily(
    world: &World,
    panel: &PanelVantage,
    day_index: usize,
    window: usize,
    max_len: usize,
) -> RankedList {
    assert!(
        day_index < panel.day_count(),
        "day {day_index} not ingested"
    );
    let start = (day_index + 1).saturating_sub(window);
    let days = &panel.all_days()[start..=day_index];
    let n_days = days.len() as f64;

    let mut pv: BTreeMap<SiteId, f64> = BTreeMap::new();
    let mut uv: BTreeMap<SiteId, f64> = BTreeMap::new();
    for day in days {
        for (site, stats) in day.sites() {
            *pv.entry(*site).or_default() += f64::from(stats.pageviews);
            *uv.entry(*site).or_default() += f64::from(stats.visitors);
        }
    }

    let mut scored: Vec<(SiteId, f64)> = pv
        .iter()
        .map(|(site, &p)| {
            let v = uv.get(site).copied().unwrap_or(0.0);
            // Geometric mean of average daily pageviews and visitors, times
            // the Certify boost for sites measured directly [4].
            let boost = world.sites[site.index()].certify_boost;
            (*site, ((p / n_days) * (v / n_days)).sqrt() * boost)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1).then_with(|| {
            world.sites[a.0.index()]
                .domain
                .cmp(&world.sites[b.0.index()].domain)
        })
    });
    scored.truncate(max_len);

    RankedList::from_sorted_names(
        ListSource::Alexa,
        scored
            .into_iter()
            .map(|(site, _)| world.sites[site.index()].domain.as_str().to_owned())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::WorldConfig;

    fn setup() -> (World, PanelVantage) {
        let w = World::generate(WorldConfig::small(81)).unwrap();
        let mut p = PanelVantage::new(&w);
        for d in 0..5 {
            let t = w.simulate_day(d);
            p.ingest_day(&w, &t);
        }
        (w, p)
    }

    #[test]
    fn produces_a_ranked_domain_list() {
        let (w, p) = setup();
        let l = build_daily(&w, &p, 4, 28, 1_000);
        assert!(!l.is_empty());
        // Entries are registrable domains known to the world.
        for e in l.entries.iter().take(20) {
            let d = e.name.parse().unwrap();
            assert!(w.site_by_domain(&d).is_some(), "unknown domain {}", e.name);
        }
        // Ranks are 1..n.
        for (i, e) in l.entries.iter().enumerate() {
            assert_eq!(e.rank, i as u32 + 1);
        }
    }

    #[test]
    fn longer_window_is_more_stable() {
        let (w, p) = setup();
        // Compare day-over-day churn of 1-day vs 5-day windows.
        let top_set = |l: &RankedList| -> std::collections::HashSet<String> {
            l.top_names(50).map(str::to_owned).collect()
        };
        let short_a = top_set(&build_daily(&w, &p, 3, 1, 1_000));
        let short_b = top_set(&build_daily(&w, &p, 4, 1, 1_000));
        let long_a = top_set(&build_daily(&w, &p, 3, 5, 1_000));
        let long_b = top_set(&build_daily(&w, &p, 4, 5, 1_000));
        let churn = |a: &std::collections::HashSet<String>,
                     b: &std::collections::HashSet<String>| {
            a.symmetric_difference(b).count()
        };
        assert!(
            churn(&long_a, &long_b) <= churn(&short_a, &short_b),
            "windowed list should churn less"
        );
    }

    #[test]
    fn respects_max_len() {
        let (w, p) = setup();
        let l = build_daily(&w, &p, 4, 28, 10);
        assert!(l.len() <= 10);
    }
}
