//! Domain interning: dense integer IDs for a study's domain universe.
//!
//! The analysis stage (`topple-core`) compares the same few hundred thousand
//! registrable domains against each other thousands of times — 7 lists × 7+
//! CDN metrics × 4 magnitudes × 28 days, plus the 21-metric intra-CDN matrix.
//! Hashing domain *strings* per comparison dominates that grid. A
//! [`DomainTable`] maps every domain seen by a study (world site names plus
//! every normalized list entry) to a dense [`DomainId`] exactly once;
//! downstream set algebra then runs over sorted `u32` slices
//! (`topple_stats::sets::jaccard_sorted`) with no hashing and no per-call
//! allocation.
//!
//! IDs are assigned in insertion order, so a table built by a deterministic
//! construction order is itself deterministic; nothing in this module iterates
//! a hash map.

use std::collections::HashMap;

use topple_psl::DomainName;

/// Dense identifier of a domain within one study's [`DomainTable`].
///
/// IDs are only meaningful relative to the table that issued them; they are
/// assigned contiguously from 0 in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(u32);

impl DomainId {
    /// The raw dense index as `u32` (for columnar storage and merge-walks).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from a raw dense index — the snapshot-import
    /// inverse of [`Self::raw`]. The caller is responsible for the value
    /// having been issued by (and bounds-checked against) the table it will
    /// be used with.
    pub fn from_raw(raw: u32) -> DomainId {
        DomainId(raw)
    }

    /// The raw dense index as `usize` (for indexing id-keyed columns).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional domain ↔ [`DomainId`] table ("interner").
///
/// Built once per study; the id → name direction is a dense `Vec`, the
/// name → id direction a hash map that is only ever probed, never iterated.
#[derive(Debug, Clone, Default)]
pub struct DomainTable {
    names: Vec<DomainName>,
    index: HashMap<DomainName, DomainId>,
}

impl DomainTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table sized for roughly `capacity` domains.
    pub fn with_capacity(capacity: usize) -> Self {
        DomainTable {
            names: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Rebuilds a table from an id-ordered name column (index `i` becomes id
    /// `i`), re-deriving the name → id map — the snapshot-load inverse of
    /// [`Self::names`]. Duplicate names keep their first id, matching what
    /// `intern` would have produced.
    pub fn from_names(names: Vec<DomainName>) -> Self {
        let mut index = HashMap::with_capacity(names.len());
        for (i, name) in names.iter().enumerate() {
            index.entry(name.clone()).or_insert(DomainId(i as u32));
        }
        DomainTable { names, index }
    }

    /// Returns the id for `name`, interning it if unseen.
    pub fn intern(&mut self, name: &DomainName) -> DomainId {
        if let Some(&id) = self.index.get(name.as_str()) {
            return id;
        }
        debug_assert!(
            self.names.len() < u32::MAX as usize,
            "domain universe overflow"
        );
        let id = DomainId(self.names.len() as u32);
        self.names.push(name.clone());
        self.index.insert(name.clone(), id);
        id
    }

    /// Looks up the id of an already-interned domain.
    pub fn id(&self, name: &str) -> Option<DomainId> {
        self.index.get(name).copied()
    }

    /// The domain a given id was issued for.
    ///
    /// Panics (via slice indexing) when handed an id from a different table;
    /// ids never outlive their table in this codebase.
    pub fn name(&self, id: DomainId) -> &DomainName {
        &self.names[id.index()]
    }

    /// Number of interned domains (also the exclusive upper bound on raw ids).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned names in id order (index `i` holds the name of id `i`).
    pub fn names(&self) -> &[DomainName] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        s.parse().expect("valid domain")
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = DomainTable::new();
        let a = t.intern(&name("a.com"));
        let b = t.intern(&name("b.com"));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        // Re-interning returns the original id.
        assert_eq!(t.intern(&name("a.com")), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a).as_str(), "a.com");
        assert_eq!(t.id("b.com"), Some(b));
        assert_eq!(t.id("missing.com"), None);
    }

    #[test]
    fn from_names_inverts_names() {
        let mut t = DomainTable::new();
        for s in ["z.com", "m.com", "a.com"] {
            t.intern(&name(s));
        }
        let rebuilt = DomainTable::from_names(t.names().to_vec());
        assert_eq!(rebuilt.len(), t.len());
        for (i, n) in t.names().iter().enumerate() {
            assert_eq!(rebuilt.id(n.as_str()).map(|id| id.index()), Some(i));
        }
    }

    #[test]
    fn insertion_order_is_the_id_order() {
        let mut t = DomainTable::new();
        for s in ["z.com", "m.com", "a.com"] {
            t.intern(&name(s));
        }
        let order: Vec<&str> = t.names().iter().map(|d| d.as_str()).collect();
        assert_eq!(order, vec!["z.com", "m.com", "a.com"]);
    }
}
