//! The Tranco aggregation (Le Pochat et al., NDSS 2019 \[18\]).
//!
//! Tranco combines daily Alexa, Umbrella, and Majestic snapshots over a
//! 30-day window with the **Dowdall rule**: every appearance of a name at
//! rank *r* contributes `1/r`, and names are re-ranked by total score. The
//! aggregation smooths daily churn and raises manipulation cost, but — as the
//! paper shows — it inherits and averages its inputs' biases rather than
//! fixing them.

use std::collections::BTreeMap;

use crate::model::{ListSource, RankedList};

/// Aggregates input lists with the Dowdall rule into a Tranco-style list.
///
/// `inputs` holds every (list, day) snapshot in the window, from any mix of
/// providers. Names are aggregated exactly as published (no normalization —
/// real Tranco contains Umbrella's FQDN entries verbatim).
pub fn build(inputs: &[&RankedList], max_len: usize) -> RankedList {
    let mut scores: BTreeMap<&str, f64> = BTreeMap::new();
    for list in inputs {
        for e in &list.entries {
            *scores.entry(e.name.as_str()).or_default() += 1.0 / f64::from(e.rank);
        }
    }
    let mut scored: Vec<(&str, f64)> = scores.into_iter().collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    scored.truncate(max_len);
    RankedList::from_sorted_names(
        ListSource::Tranco,
        scored.into_iter().map(|(n, _)| n.to_owned()).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(names: &[&str]) -> RankedList {
        RankedList::from_sorted_names(
            ListSource::Alexa,
            names.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn dowdall_scores_sum_reciprocal_ranks() {
        // a: rank 1 in both lists -> 2.0; b: rank 2 + rank 3 -> 0.8333;
        // c: rank 3 + rank 2 -> 0.8333 (tie, broken alphabetically: b first).
        let l1 = list(&["a.com", "b.com", "c.com"]);
        let l2 = list(&["a.com", "c.com", "b.com"]);
        let t = build(&[&l1, &l2], 10);
        let names: Vec<&str> = t.top_names(3).collect();
        assert_eq!(names, vec!["a.com", "b.com", "c.com"]);
    }

    #[test]
    fn appearing_in_more_snapshots_wins() {
        // x at rank 5 in three lists (3 × 0.2 = 0.6) beats y at rank 2 in one
        // list (0.5): persistence beats a single good day.
        let mk = |names: &[&str]| list(names);
        let l1 = mk(&["f1.com", "f2.com", "f3.com", "f4.com", "x.com"]);
        let l2 = mk(&["f5.com", "f6.com", "f7.com", "f8.com", "x.com"]);
        let l3 = mk(&["f9.com", "y.com", "f10.com", "f11.com", "x.com"]);
        let t = build(&[&l1, &l2, &l3], 100);
        let rank_of = |t: &RankedList, n: &str| {
            t.entries
                .iter()
                .find(|e| e.name == n)
                .map(|e| e.rank)
                .unwrap()
        };
        assert!(rank_of(&t, "x.com") < rank_of(&t, "y.com"));
    }

    #[test]
    fn stability_under_single_day_churn() {
        // Swapping two tail entries on one of 10 days barely moves the output.
        let base = list(&["a.com", "b.com", "c.com", "d.com", "e.com"]);
        let churned = list(&["a.com", "b.com", "c.com", "e.com", "d.com"]);
        let mut days: Vec<&RankedList> = vec![&base; 9];
        days.push(&churned);
        let t = build(&days, 10);
        assert_eq!(
            t.top_names(5).collect::<Vec<_>>(),
            vec!["a.com", "b.com", "c.com", "d.com", "e.com"]
        );
    }

    #[test]
    fn empty_inputs_give_empty_list() {
        let t = build(&[], 10);
        assert!(t.is_empty());
    }
}
