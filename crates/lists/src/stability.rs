//! List stability metrics (Scheitle et al. \[27\], Section 2/5.4 background).
//!
//! The prior work the paper builds on formalized *stability* — how much a
//! list changes day over day — as a first-class property of top lists, and
//! found the commercial lists wanting. These helpers quantify it for any
//! sequence of daily snapshots: head-set churn, and the rank displacement of
//! entries that persist.

use std::collections::HashMap;

use crate::model::RankedList;

/// Stability of one list sequence at depth `k`.
#[derive(Debug, Clone)]
pub struct StabilityReport {
    /// Depth analyzed.
    pub k: usize,
    /// Per-day-pair share of the top-k retained (1.0 = identical heads).
    pub daily_retention: Vec<f64>,
    /// Per-day-pair mean absolute rank change among retained entries.
    pub daily_rank_churn: Vec<f64>,
}

impl StabilityReport {
    /// Mean retention across the window.
    pub fn mean_retention(&self) -> f64 {
        mean(&self.daily_retention)
    }

    /// Mean rank churn across the window.
    pub fn mean_rank_churn(&self) -> f64 {
        mean(&self.daily_rank_churn)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Computes stability of consecutive daily snapshots at depth `k`.
///
/// Returns a report with one entry per adjacent day pair; sequences shorter
/// than two days yield empty vectors.
pub fn stability(days: &[RankedList], k: usize) -> StabilityReport {
    let mut daily_retention = Vec::new();
    let mut daily_rank_churn = Vec::new();
    for pair in days.windows(2) {
        let prev: HashMap<&str, u32> = pair[0]
            .entries
            .iter()
            .take(k)
            .map(|e| (e.name.as_str(), e.rank))
            .collect();
        let cur: Vec<(&str, u32)> = pair[1]
            .entries
            .iter()
            .take(k)
            .map(|e| (e.name.as_str(), e.rank))
            .collect();
        let denom = prev.len().max(cur.len()).max(1);
        let mut kept = 0usize;
        let mut churn_sum = 0.0;
        for (name, rank) in &cur {
            if let Some(&old) = prev.get(name) {
                kept += 1;
                churn_sum += (f64::from(*rank) - f64::from(old)).abs();
            }
        }
        daily_retention.push(kept as f64 / denom as f64);
        daily_rank_churn.push(if kept > 0 {
            churn_sum / kept as f64
        } else {
            f64::NAN
        });
    }
    StabilityReport {
        k,
        daily_retention,
        daily_rank_churn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ListSource;

    fn list(names: &[&str]) -> RankedList {
        RankedList::from_sorted_names(
            ListSource::Alexa,
            names.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn identical_days_are_fully_stable() {
        let a = list(&["a", "b", "c"]);
        let days = vec![a.clone(), a.clone(), a];
        let r = stability(&days, 3);
        assert_eq!(r.daily_retention, vec![1.0, 1.0]);
        assert_eq!(r.daily_rank_churn, vec![0.0, 0.0]);
        assert_eq!(r.mean_retention(), 1.0);
    }

    #[test]
    fn disjoint_days_are_fully_unstable() {
        let days = vec![list(&["a", "b"]), list(&["c", "d"])];
        let r = stability(&days, 2);
        assert_eq!(r.daily_retention, vec![0.0]);
        assert!(r.daily_rank_churn[0].is_nan());
    }

    #[test]
    fn rank_churn_measures_displacement() {
        let days = vec![list(&["a", "b", "c"]), list(&["c", "b", "a"])];
        let r = stability(&days, 3);
        assert_eq!(r.daily_retention, vec![1.0]);
        // a: 1->3 (2), b: 2->2 (0), c: 3->1 (2) => mean 4/3.
        assert!((r.daily_rank_churn[0] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn depth_truncates_analysis() {
        let days = vec![list(&["a", "b", "x"]), list(&["a", "b", "y"])];
        let r = stability(&days, 2);
        assert_eq!(r.daily_retention, vec![1.0]); // x/y churn is below depth 2
        let r3 = stability(&days, 3);
        assert!((r3.daily_retention[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn short_sequences_yield_empty_reports() {
        let r = stability(&[list(&["a"])], 1);
        assert!(r.daily_retention.is_empty());
        assert!(r.mean_retention().is_nan());
    }
}
