//! The Majestic-style list: domains ranked by distinct referring domains.
//!
//! "The Majestic Million is calculated based on the number of backlinks that
//! each site has" \[21\] — specifically distinct referring *subnets/domains*,
//! with raw backlink count as tiebreaker. Link counts reflect who publishes
//! hyperlinks, not who browses, which is the mechanism behind Majestic's
//! institutional skew in Table 3.

use topple_sim::World;
use topple_vantage::CrawlerVantage;

use crate::model::{ListSource, RankedList};

/// Builds the Majestic-style list from a crawl.
pub fn build(world: &World, crawl: &CrawlerVantage, max_len: usize) -> RankedList {
    let refs = crawl.referring_domains();
    let backlinks = crawl.backlinks();
    let mut scored: Vec<(usize, f64, u32)> = refs
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r > 0.0)
        .map(|(i, &r)| (i, r, backlinks[i]))
        .collect();
    scored.sort_by(|a, b| {
        b.1.total_cmp(&a.1)
            .then(b.2.cmp(&a.2))
            .then_with(|| world.sites[a.0].domain.cmp(&world.sites[b.0].domain))
    });
    scored.truncate(max_len);
    RankedList::from_sorted_names(
        ListSource::Majestic,
        scored
            .into_iter()
            .map(|(i, _, _)| world.sites[i].domain.as_str().to_owned())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use topple_sim::{Category, WorldConfig};

    fn setup() -> (World, CrawlerVantage) {
        let w = World::generate(WorldConfig::small(101)).unwrap();
        let c = CrawlerVantage::crawl(&w, 20, usize::MAX);
        (w, c)
    }

    #[test]
    fn only_linked_sites_listed() {
        let (w, c) = setup();
        let l = build(&w, &c, usize::MAX);
        assert!(!l.is_empty());
        assert!(l.len() < w.sites.len(), "unlinked sites must be absent");
    }

    #[test]
    fn head_is_institution_heavy() {
        let (w, c) = setup();
        let l = build(&w, &c, usize::MAX);
        let head_k = 100.min(l.len());
        let inst = l
            .top_names(head_k)
            .filter(|n| {
                let d = n.parse().unwrap();
                matches!(
                    w.site_by_domain(&d).unwrap().category,
                    Category::Government | Category::News | Category::Education | Category::Science
                )
            })
            .count();
        let universe_share: f64 = [
            Category::Government,
            Category::News,
            Category::Education,
            Category::Science,
        ]
        .iter()
        .map(|c| c.universe_share())
        .sum();
        assert!(
            inst as f64 / head_k as f64 > universe_share,
            "institutions should be overrepresented: {inst}/{head_k} vs base {universe_share:.3}"
        );
    }

    #[test]
    fn adult_sites_scarce() {
        let (w, c) = setup();
        let l = build(&w, &c, usize::MAX);
        let head_k = 200.min(l.len());
        let adult = l
            .top_names(head_k)
            .filter(|n| {
                let d = n.parse().unwrap();
                w.site_by_domain(&d).unwrap().category == Category::Adult
            })
            .count();
        assert!(
            (adult as f64 / head_k as f64) < Category::Adult.universe_share(),
            "adult sites should be underrepresented: {adult}/{head_k}"
        );
    }
}
