//! The Trexa interleave (Zeber et al. \[35\]).
//!
//! Trexa "interleaves Tranco and Alexa rankings (i.e., additionally weighting
//! towards Alexa)" to better match observed user browsing. We implement the
//! interleave as a weighted merge: for every one Tranco pick, `alexa_weight`
//! Alexa picks are taken (skipping duplicates), preserving each source's
//! internal order.

use std::collections::HashSet;

use crate::model::{ListSource, RankedList};

/// Interleaves `tranco` and `alexa` with `alexa_weight` Alexa picks per
/// Tranco pick (the reference construction weights toward Alexa; 2 is used
/// throughout this workspace).
pub fn build(
    tranco: &RankedList,
    alexa: &RankedList,
    alexa_weight: usize,
    max_len: usize,
) -> RankedList {
    assert!(alexa_weight >= 1, "alexa_weight must be at least 1");
    let mut names: Vec<String> = Vec::new();
    // topple-lint: allow(string-set): construction-time dedup; the study's DomainTable does not exist yet
    let mut seen: HashSet<&str> = HashSet::new();
    let mut ai = alexa.entries.iter();
    let mut ti = tranco.entries.iter();
    'outer: loop {
        // `alexa_weight` picks from Alexa…
        let mut advanced = false;
        for _ in 0..alexa_weight {
            for e in ai.by_ref() {
                if seen.insert(e.name.as_str()) {
                    names.push(e.name.clone());
                    advanced = true;
                    break;
                }
            }
            if names.len() >= max_len {
                break 'outer;
            }
        }
        // …then one from Tranco.
        for e in ti.by_ref() {
            if seen.insert(e.name.as_str()) {
                names.push(e.name.clone());
                advanced = true;
                break;
            }
        }
        if names.len() >= max_len || !advanced {
            break;
        }
    }
    names.truncate(max_len);
    RankedList::from_sorted_names(ListSource::Trexa, names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(src: ListSource, names: &[&str]) -> RankedList {
        RankedList::from_sorted_names(src, names.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn interleaves_with_alexa_weight() {
        let alexa = list(ListSource::Alexa, &["a1", "a2", "a3", "a4"]);
        let tranco = list(ListSource::Tranco, &["t1", "t2"]);
        let t = build(&tranco, &alexa, 2, 100);
        assert_eq!(
            t.top_names(6).collect::<Vec<_>>(),
            vec!["a1", "a2", "t1", "a3", "a4", "t2"]
        );
    }

    #[test]
    fn skips_duplicates() {
        let alexa = list(ListSource::Alexa, &["x", "y", "z"]);
        let tranco = list(ListSource::Tranco, &["x", "w"]);
        let t = build(&tranco, &alexa, 2, 100);
        let names: Vec<&str> = t.top_names(10).collect();
        assert_eq!(names, vec!["x", "y", "w", "z"]);
        // No duplicates anywhere.
        let set: HashSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn exhausts_both_sources() {
        let alexa = list(ListSource::Alexa, &["a"]);
        let tranco = list(ListSource::Tranco, &["t1", "t2", "t3"]);
        let t = build(&tranco, &alexa, 2, 100);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn respects_max_len() {
        let alexa = list(ListSource::Alexa, &["a1", "a2", "a3", "a4", "a5"]);
        let tranco = list(ListSource::Tranco, &["t1", "t2", "t3"]);
        let t = build(&tranco, &alexa, 2, 4);
        assert_eq!(t.len(), 4);
    }
}
