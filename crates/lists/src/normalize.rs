//! PSL-based list normalization (Section 4.2).
//!
//! Lists rank different objects — registrable domains (Alexa, Majestic,
//! Secrank, Tranco, Trexa), FQDNs (Umbrella), web origins (CrUX). To compare
//! them, every entry is reduced to its PSL-defined registrable domain and
//! each domain keeps the *smallest* (most popular) rank among its entries.
//!
//! The fraction of entries whose raw name differs from their registrable
//! domain is the "deviation" reported in Table 2.

use std::collections::BTreeMap;

use topple_psl::{DomainName, PublicSuffixList};

use crate::model::{BucketedList, ListSource, RankedList, TopList};

/// A list normalized to registrable domains.
#[derive(Debug, Clone)]
pub struct NormalizedList {
    /// Which methodology produced the list.
    pub source: ListSource,
    /// `(domain, value)` sorted ascending by value. For rank-ordered sources
    /// the value is the min rank; for bucketed sources it is the min bucket.
    pub entries: Vec<(DomainName, u32)>,
    /// Whether `value` is an individual rank (true) or a bucket size (false).
    pub ordered: bool,
    /// Raw entries inspected.
    pub raw_len: usize,
    /// Raw entries whose name deviated from its registrable domain.
    pub deviating: usize,
}

impl NormalizedList {
    /// Percent of raw entries deviating from the PSL-registrable form
    /// (Table 2's statistic).
    pub fn deviation_percent(&self) -> f64 {
        if self.raw_len == 0 {
            0.0
        } else {
            100.0 * self.deviating as f64 / self.raw_len as f64
        }
    }

    /// Domains within the top `k`: for ordered lists the first `k` by rank;
    /// for bucketed lists everything with bucket ≤ `k`.
    pub fn top_domains(&self, k: usize) -> Vec<&DomainName> {
        if self.ordered {
            self.entries.iter().take(k).map(|(d, _)| d).collect()
        } else {
            self.entries
                .iter()
                .filter(|(_, b)| *b as usize <= k)
                .map(|(d, _)| d)
                .collect()
        }
    }

    /// `(domain, rank)` pairs within the top `k` (ordered lists only).
    pub fn top_ranked(&self, k: usize) -> &[(DomainName, u32)] {
        debug_assert!(self.ordered, "rank access on a bucketed list");
        &self.entries[..k.min(self.entries.len())]
    }

    /// Re-materializes the normalized list as a ranked list of registrable
    /// domains (ranks re-assigned 1..n in normalized order).
    ///
    /// This models list publishers that PSL-filter their output — the real
    /// Tranco aggregates its inputs at the pay-level-domain granularity,
    /// which is why Table 2 shows it deviating 0% from the PSL.
    pub fn to_ranked_list(&self) -> RankedList {
        RankedList::from_sorted_names(
            self.source,
            self.entries
                .iter()
                .map(|(d, _)| d.as_str().to_owned())
                .collect(),
        )
    }

    /// Number of normalized entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the normalized list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Extracts the host from a raw list entry (strips an origin's scheme/port).
fn entry_host(raw: &str) -> Option<DomainName> {
    if let Some((_scheme, rest)) = raw.split_once("://") {
        let host = rest.split(['/', ':']).next().unwrap_or(rest);
        DomainName::new(host).ok()
    } else {
        DomainName::new(raw).ok()
    }
}

fn normalize_entries<'a>(
    psl: &PublicSuffixList,
    raw: impl Iterator<Item = (&'a str, u32)>,
) -> (Vec<(DomainName, u32)>, usize, usize) {
    let mut best: BTreeMap<DomainName, u32> = BTreeMap::new();
    let mut raw_len = 0usize;
    let mut deviating = 0usize;
    for (name, value) in raw {
        raw_len += 1;
        let Some(host) = entry_host(name) else {
            // Unparseable entries (rare; e.g. raw IPs) count as deviating and
            // are dropped, as the paper's domain grouping would do.
            deviating += 1;
            continue;
        };
        // The grouping key: registrable domain, or the host itself when it is
        // already a public suffix (e.g. the literal name `com` on Umbrella).
        // An entry "deviates" when the listed host is not itself a
        // registrable domain (subdomain FQDNs, bare public suffixes). An
        // origin whose host IS the apex (https://example.com) does not
        // deviate — the paper's Table 2 measures name-shape, not scheme.
        let (key, deviates) = match psl.registrable_domain(&host) {
            Some(reg) => {
                let dev = reg != host;
                (reg, dev)
            }
            None => (host, true),
        };
        if deviates {
            deviating += 1;
        }
        best.entry(key)
            .and_modify(|v| *v = (*v).min(value))
            .or_insert(value);
    }
    let mut entries: Vec<(DomainName, u32)> = best.into_iter().collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    (entries, raw_len, deviating)
}

/// Normalizes a ranked list.
pub fn normalize_ranked(psl: &PublicSuffixList, list: &RankedList) -> NormalizedList {
    let (entries, raw_len, deviating) =
        normalize_entries(psl, list.entries.iter().map(|e| (e.name.as_str(), e.rank)));
    NormalizedList {
        source: list.source,
        entries,
        ordered: true,
        raw_len,
        deviating,
    }
}

/// Normalizes a bucketed list.
pub fn normalize_bucketed(psl: &PublicSuffixList, list: &BucketedList) -> NormalizedList {
    let (entries, raw_len, deviating) = normalize_entries(
        psl,
        list.entries.iter().map(|e| (e.name.as_str(), e.bucket)),
    );
    NormalizedList {
        source: list.source,
        entries,
        ordered: false,
        raw_len,
        deviating,
    }
}

/// Normalizes either format.
pub fn normalize(psl: &PublicSuffixList, list: &TopList) -> NormalizedList {
    match list {
        TopList::Ranked(l) => normalize_ranked(psl, l),
        TopList::Bucketed(l) => normalize_bucketed(psl, l),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BucketedEntry;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::builtin()
    }

    fn ranked(names: &[&str]) -> RankedList {
        RankedList::from_sorted_names(
            ListSource::Umbrella,
            names.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn groups_by_registrable_domain_with_min_rank() {
        let l = ranked(&[
            "cdn.example.com",
            "example.com",
            "www.example.com",
            "other.net",
        ]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.len(), 2);
        assert_eq!(n.entries[0].0.as_str(), "example.com");
        assert_eq!(n.entries[0].1, 1); // min rank of the group
        assert_eq!(n.entries[1].0.as_str(), "other.net");
        assert_eq!(n.entries[1].1, 4);
    }

    #[test]
    fn deviation_counts_subdomains_and_suffixes() {
        // cdn.example.com deviates; example.com does not; `com` (a public
        // suffix) deviates; www.example.com deviates.
        let l = ranked(&["cdn.example.com", "example.com", "com", "www.example.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.raw_len, 4);
        assert_eq!(n.deviating, 3);
        assert!((n.deviation_percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn origins_are_stripped_and_deviate() {
        let b = BucketedList {
            source: ListSource::Crux,
            entries: vec![
                BucketedEntry {
                    name: "https://example.com".into(),
                    bucket: 100,
                },
                BucketedEntry {
                    name: "https://www.example.com".into(),
                    bucket: 1000,
                },
                BucketedEntry {
                    name: "https://shop.other.co.uk".into(),
                    bucket: 1000,
                },
            ],
        };
        let n = normalize_bucketed(&psl(), &b);
        assert_eq!(n.len(), 2);
        assert_eq!(n.entries[0].0.as_str(), "example.com");
        assert_eq!(n.entries[0].1, 100); // min bucket
        assert_eq!(n.entries[1].0.as_str(), "other.co.uk");
        // Subdomain-host origins deviate; the apex-host origin does not.
        assert_eq!(n.deviating, 2);
    }

    #[test]
    fn domain_lists_deviate_little() {
        let l = RankedList::from_sorted_names(
            ListSource::Alexa,
            vec!["a.com".into(), "b.co.uk".into(), "c.de".into()],
        );
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.deviating, 0);
        assert_eq!(n.deviation_percent(), 0.0);
    }

    #[test]
    fn top_domains_ordered_vs_bucketed() {
        let l = ranked(&["a.com", "b.com", "c.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.top_domains(2).len(), 2);
        let b = BucketedList {
            source: ListSource::Crux,
            entries: vec![
                BucketedEntry {
                    name: "https://a.com".into(),
                    bucket: 10,
                },
                BucketedEntry {
                    name: "https://b.com".into(),
                    bucket: 100,
                },
            ],
        };
        let nb = normalize_bucketed(&psl(), &b);
        assert_eq!(nb.top_domains(10).len(), 1);
        assert_eq!(nb.top_domains(100).len(), 2);
    }

    #[test]
    fn unparseable_entries_drop_but_count() {
        let l = ranked(&["good.com", "bad name!.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.len(), 1);
        assert_eq!(n.raw_len, 2);
        assert_eq!(n.deviating, 1);
    }
}
