//! PSL-based list normalization (Section 4.2).
//!
//! Lists rank different objects — registrable domains (Alexa, Majestic,
//! Secrank, Tranco, Trexa), FQDNs (Umbrella), web origins (CrUX). To compare
//! them, every entry is reduced to its PSL-defined registrable domain and
//! each domain keeps the *smallest* (most popular) rank among its entries.
//!
//! The fraction of entries whose raw name differs from their registrable
//! domain is the "deviation" reported in Table 2.
//!
//! Normalization is the analysis stage's hottest string operation — a study
//! normalizes the same raw names across 28 daily lists and many magnitude
//! cuts — so the work-horse here is the stateful [`Normalizer`]: it memoizes
//! the outcome of every distinct raw entry (via [`RegistrableCache`] for the
//! PSL walk) and interns each resulting registrable domain into a shared
//! [`DomainTable`], emitting a dense-ID column alongside the name column.
//! The free functions ([`normalize_ranked`] and friends) remain as one-shot
//! wrappers over a throwaway `Normalizer` and produce identical output.

use std::collections::{BTreeMap, HashMap};

use topple_psl::{DomainName, PublicSuffixList, RegistrableCache};

use crate::interner::{DomainId, DomainTable};
use crate::model::{BucketedList, ListSource, RankedList, TopList};

/// A list normalized to registrable domains.
#[derive(Debug, Clone)]
pub struct NormalizedList {
    /// Which methodology produced the list.
    pub source: ListSource,
    /// `(domain, value)` sorted ascending by value. For rank-ordered sources
    /// the value is the min rank; for bucketed sources it is the min bucket.
    pub entries: Vec<(DomainName, u32)>,
    /// Interned id of each entry, parallel to [`entries`](Self::entries)
    /// (`ids[i]` is the id of `entries[i].0` in the producing
    /// [`DomainTable`]). Because entries are value-sorted, every top-k cut is
    /// a *prefix* of this column for ordered and bucketed lists alike.
    pub ids: Vec<DomainId>,
    /// Whether `value` is an individual rank (true) or a bucket size (false).
    pub ordered: bool,
    /// Raw entries inspected.
    pub raw_len: usize,
    /// Raw entries whose name deviated from its registrable domain.
    pub deviating: usize,
}

impl NormalizedList {
    /// Percent of raw entries deviating from the PSL-registrable form
    /// (Table 2's statistic).
    pub fn deviation_percent(&self) -> f64 {
        if self.raw_len == 0 {
            0.0
        } else {
            100.0 * self.deviating as f64 / self.raw_len as f64
        }
    }

    /// Domains within the top `k`: for ordered lists the first `k` by rank;
    /// for bucketed lists everything with bucket ≤ `k`.
    pub fn top_domains(&self, k: usize) -> Vec<&DomainName> {
        self.entries[..self.top_len(k)]
            .iter()
            .map(|(d, _)| d)
            .collect()
    }

    /// Interned ids within the top `k` — the prefix view equivalent of
    /// [`top_domains`](Self::top_domains), shared by every magnitude.
    pub fn top_ids(&self, k: usize) -> &[DomainId] {
        &self.ids[..self.top_len(k)]
    }

    /// Length of the top-`k` prefix. Entries are sorted ascending by value,
    /// so for bucketed lists "bucket ≤ k" is also a prefix, found by binary
    /// search.
    pub fn top_len(&self, k: usize) -> usize {
        if self.ordered {
            k.min(self.entries.len())
        } else {
            self.entries.partition_point(|(_, b)| *b as usize <= k)
        }
    }

    /// `(domain, rank)` pairs within the top `k` (ordered lists only).
    pub fn top_ranked(&self, k: usize) -> &[(DomainName, u32)] {
        debug_assert!(self.ordered, "rank access on a bucketed list");
        &self.entries[..k.min(self.entries.len())]
    }

    /// Re-materializes the normalized list as a ranked list of registrable
    /// domains (ranks re-assigned 1..n in normalized order).
    ///
    /// This models list publishers that PSL-filter their output — the real
    /// Tranco aggregates its inputs at the pay-level-domain granularity,
    /// which is why Table 2 shows it deviating 0% from the PSL.
    pub fn to_ranked_list(&self) -> RankedList {
        RankedList::from_sorted_names(
            self.source,
            self.entries
                .iter()
                .map(|(d, _)| d.as_str().to_owned())
                .collect(),
        )
    }

    /// Number of normalized entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the normalized list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Extracts the host from a raw list entry (strips an origin's scheme/port).
fn entry_host(raw: &str) -> Option<DomainName> {
    if let Some((_scheme, rest)) = raw.split_once("://") {
        let host = rest.split(['/', ':']).next().unwrap_or(rest);
        DomainName::new(host).ok()
    } else {
        DomainName::new(raw).ok()
    }
}

/// Memoized fate of one distinct raw entry string.
#[derive(Debug, Clone, Copy)]
enum EntryOutcome {
    /// Grouped under the given interned registrable domain.
    Kept { id: DomainId, deviates: bool },
    /// Unparseable (e.g. raw IPs); counted as deviating and dropped, as the
    /// paper's domain grouping would do.
    Dropped,
}

/// Stateful, memoizing normalizer shared across a study's lists.
///
/// Each distinct raw entry string is parsed, PSL-walked, and interned exactly
/// once; re-normalizing a list (or a later day's list sharing most entries)
/// costs one hash lookup per entry. The accumulated [`DomainTable`] is the
/// study's domain universe, recoverable via [`into_table`](Self::into_table).
#[derive(Debug)]
pub struct Normalizer<'a> {
    psl: &'a PublicSuffixList,
    cache: RegistrableCache,
    table: DomainTable,
    entry_memo: HashMap<String, EntryOutcome>,
}

impl<'a> Normalizer<'a> {
    /// Creates a normalizer with an empty [`DomainTable`].
    pub fn new(psl: &'a PublicSuffixList) -> Self {
        Self::with_table(psl, DomainTable::new())
    }

    /// Creates a normalizer over a pre-seeded table (e.g. one already holding
    /// the world's site domains, so site index == id; see `topple-core`).
    pub fn with_table(psl: &'a PublicSuffixList, table: DomainTable) -> Self {
        Normalizer {
            psl,
            cache: RegistrableCache::new(),
            table,
            entry_memo: HashMap::new(),
        }
    }

    /// Interns a domain directly (used to seed the table before lists are
    /// normalized, and to map non-list names into the same id space).
    pub fn intern(&mut self, name: &DomainName) -> DomainId {
        self.table.intern(name)
    }

    /// The table built so far.
    pub fn table(&self) -> &DomainTable {
        &self.table
    }

    /// Consumes the normalizer, yielding the accumulated table.
    pub fn into_table(self) -> DomainTable {
        self.table
    }

    /// The underlying PSL memo (hit/miss counters for diagnostics).
    pub fn cache(&self) -> &RegistrableCache {
        &self.cache
    }

    /// Normalizes a ranked list.
    pub fn ranked(&mut self, list: &RankedList) -> NormalizedList {
        let iter: Vec<(&str, u32)> = list
            .entries
            .iter()
            .map(|e| (e.name.as_str(), e.rank))
            .collect();
        let (entries, ids, raw_len, deviating) = self.normalize_entries(&iter);
        NormalizedList {
            source: list.source,
            entries,
            ids,
            ordered: true,
            raw_len,
            deviating,
        }
    }

    /// Normalizes a bucketed list.
    pub fn bucketed(&mut self, list: &BucketedList) -> NormalizedList {
        let iter: Vec<(&str, u32)> = list
            .entries
            .iter()
            .map(|e| (e.name.as_str(), e.bucket))
            .collect();
        let (entries, ids, raw_len, deviating) = self.normalize_entries(&iter);
        NormalizedList {
            source: list.source,
            entries,
            ids,
            ordered: false,
            raw_len,
            deviating,
        }
    }

    /// Normalizes either format.
    pub fn normalize(&mut self, list: &TopList) -> NormalizedList {
        match list {
            TopList::Ranked(l) => self.ranked(l),
            TopList::Bucketed(l) => self.bucketed(l),
        }
    }

    fn entry_outcome(&mut self, raw: &str) -> EntryOutcome {
        if let Some(&o) = self.entry_memo.get(raw) {
            return o;
        }
        let outcome = match entry_host(raw) {
            None => EntryOutcome::Dropped,
            Some(host) => {
                // The grouping key: registrable domain, or the host itself
                // when it is already a public suffix (e.g. the literal name
                // `com` on Umbrella). An entry "deviates" when the listed
                // host is not itself a registrable domain (subdomain FQDNs,
                // bare public suffixes). An origin whose host IS the apex
                // (https://example.com) does not deviate — the paper's
                // Table 2 measures name-shape, not scheme.
                let (key, deviates) = match self.cache.registrable(self.psl, &host) {
                    Some(reg) => (reg.clone(), *reg != host),
                    None => (host, true),
                };
                EntryOutcome::Kept {
                    id: self.table.intern(&key),
                    deviates,
                }
            }
        };
        self.entry_memo.insert(raw.to_owned(), outcome);
        outcome
    }

    fn normalize_entries(
        &mut self,
        raw: &[(&str, u32)],
    ) -> (Vec<(DomainName, u32)>, Vec<DomainId>, usize, usize) {
        // Group by id instead of by name: a BTreeMap over dense u32 ids keeps
        // the integer comparisons cheap while staying iteration-deterministic.
        let mut best: BTreeMap<DomainId, u32> = BTreeMap::new();
        let raw_len = raw.len();
        let mut deviating = 0usize;
        for &(name, value) in raw {
            match self.entry_outcome(name) {
                EntryOutcome::Dropped => deviating += 1,
                EntryOutcome::Kept { id, deviates } => {
                    if deviates {
                        deviating += 1;
                    }
                    best.entry(id)
                        .and_modify(|v| *v = (*v).min(value))
                        .or_insert(value);
                }
            }
        }
        let mut rows: Vec<(DomainId, u32)> = best.into_iter().collect();
        // Same total order as the historical name-keyed path: ascending by
        // value, ties broken by domain name. Names are unique, so this is a
        // total order and the result is independent of grouping order.
        rows.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then_with(|| self.table.name(a.0).cmp(self.table.name(b.0)))
        });
        let ids: Vec<DomainId> = rows.iter().map(|&(id, _)| id).collect();
        let entries: Vec<(DomainName, u32)> = rows
            .into_iter()
            .map(|(id, v)| (self.table.name(id).clone(), v))
            .collect();
        (entries, ids, raw_len, deviating)
    }
}

/// Normalizes a ranked list (one-shot; see [`Normalizer`] for the shared,
/// memoizing form).
pub fn normalize_ranked(psl: &PublicSuffixList, list: &RankedList) -> NormalizedList {
    Normalizer::new(psl).ranked(list)
}

/// Normalizes a bucketed list (one-shot).
pub fn normalize_bucketed(psl: &PublicSuffixList, list: &BucketedList) -> NormalizedList {
    Normalizer::new(psl).bucketed(list)
}

/// Normalizes either format (one-shot).
pub fn normalize(psl: &PublicSuffixList, list: &TopList) -> NormalizedList {
    Normalizer::new(psl).normalize(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BucketedEntry;

    fn psl() -> PublicSuffixList {
        PublicSuffixList::builtin()
    }

    fn ranked(names: &[&str]) -> RankedList {
        RankedList::from_sorted_names(
            ListSource::Umbrella,
            names.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn groups_by_registrable_domain_with_min_rank() {
        let l = ranked(&[
            "cdn.example.com",
            "example.com",
            "www.example.com",
            "other.net",
        ]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.len(), 2);
        assert_eq!(n.entries[0].0.as_str(), "example.com");
        assert_eq!(n.entries[0].1, 1); // min rank of the group
        assert_eq!(n.entries[1].0.as_str(), "other.net");
        assert_eq!(n.entries[1].1, 4);
    }

    #[test]
    fn deviation_counts_subdomains_and_suffixes() {
        // cdn.example.com deviates; example.com does not; `com` (a public
        // suffix) deviates; www.example.com deviates.
        let l = ranked(&["cdn.example.com", "example.com", "com", "www.example.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.raw_len, 4);
        assert_eq!(n.deviating, 3);
        assert!((n.deviation_percent() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn origins_are_stripped_and_deviate() {
        let b = BucketedList {
            source: ListSource::Crux,
            entries: vec![
                BucketedEntry {
                    name: "https://example.com".into(),
                    bucket: 100,
                },
                BucketedEntry {
                    name: "https://www.example.com".into(),
                    bucket: 1000,
                },
                BucketedEntry {
                    name: "https://shop.other.co.uk".into(),
                    bucket: 1000,
                },
            ],
        };
        let n = normalize_bucketed(&psl(), &b);
        assert_eq!(n.len(), 2);
        assert_eq!(n.entries[0].0.as_str(), "example.com");
        assert_eq!(n.entries[0].1, 100); // min bucket
        assert_eq!(n.entries[1].0.as_str(), "other.co.uk");
        // Subdomain-host origins deviate; the apex-host origin does not.
        assert_eq!(n.deviating, 2);
    }

    #[test]
    fn domain_lists_deviate_little() {
        let l = RankedList::from_sorted_names(
            ListSource::Alexa,
            vec!["a.com".into(), "b.co.uk".into(), "c.de".into()],
        );
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.deviating, 0);
        assert_eq!(n.deviation_percent(), 0.0);
    }

    #[test]
    fn top_domains_ordered_vs_bucketed() {
        let l = ranked(&["a.com", "b.com", "c.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.top_domains(2).len(), 2);
        assert_eq!(n.top_ids(2).len(), 2);
        let b = BucketedList {
            source: ListSource::Crux,
            entries: vec![
                BucketedEntry {
                    name: "https://a.com".into(),
                    bucket: 10,
                },
                BucketedEntry {
                    name: "https://b.com".into(),
                    bucket: 100,
                },
            ],
        };
        let nb = normalize_bucketed(&psl(), &b);
        assert_eq!(nb.top_domains(10).len(), 1);
        assert_eq!(nb.top_domains(100).len(), 2);
        assert_eq!(nb.top_ids(10).len(), 1);
        assert_eq!(nb.top_ids(100).len(), 2);
    }

    #[test]
    fn unparseable_entries_drop_but_count() {
        let l = ranked(&["good.com", "bad name!.com"]);
        let n = normalize_ranked(&psl(), &l);
        assert_eq!(n.len(), 1);
        assert_eq!(n.raw_len, 2);
        assert_eq!(n.deviating, 1);
    }

    #[test]
    fn ids_column_is_parallel_and_table_consistent() {
        let psl = psl();
        let mut norm = Normalizer::new(&psl);
        let n = norm.ranked(&ranked(&["cdn.example.com", "other.net", "example.com"]));
        assert_eq!(n.ids.len(), n.entries.len());
        let table = norm.table();
        for (i, (domain, _)) in n.entries.iter().enumerate() {
            assert_eq!(table.name(n.ids[i]), domain);
            assert_eq!(table.id(domain.as_str()), Some(n.ids[i]));
        }
    }

    #[test]
    fn shared_normalizer_matches_one_shot_output() {
        let psl = psl();
        let lists = [
            ranked(&["cdn.example.com", "example.com", "com", "other.net"]),
            // `https://example.com` is a distinct raw spelling of an
            // already-seen host: it must hit the PSL memo, not re-walk.
            ranked(&[
                "example.com",
                "other.net",
                "https://example.com",
                "third.org",
            ]),
        ];
        let mut norm = Normalizer::new(&psl);
        for l in &lists {
            let shared = norm.ranked(l);
            let oneshot = normalize_ranked(&psl, l);
            assert_eq!(shared.entries, oneshot.entries);
            assert_eq!(shared.raw_len, oneshot.raw_len);
            assert_eq!(shared.deviating, oneshot.deviating);
        }
        // Repeated raw entries short-circuit in the entry memo and never
        // reach the PSL cache: 8 raw entries, but only 5 distinct hosts were
        // ever PSL-walked, and the origin respelling was a cache hit.
        assert_eq!(norm.cache().misses(), 5);
        assert_eq!(norm.cache().hits(), 1);
    }

    #[test]
    fn preseeded_table_keeps_seed_ids() {
        let psl = psl();
        let mut table = DomainTable::new();
        let seeded = table.intern(&"example.com".parse().expect("valid"));
        let mut norm = Normalizer::with_table(&psl, table);
        let n = norm.ranked(&ranked(&["www.example.com"]));
        assert_eq!(n.ids, vec![seeded]);
    }
}
