//! Property-based tests for the list data model, normalization, and the
//! aggregation algorithms.

use proptest::prelude::*;
use topple_lists::{normalize_ranked, tranco, trexa, ListSource, RankedList};
use topple_psl::PublicSuffixList;

/// Strategy: a ranked list of unique plausible names (domains + FQDNs).
fn name_list() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set(
        "[a-z]{1,6}(\\.[a-z]{1,6}){0,2}\\.(com|net|org|co\\.uk)",
        1..40,
    )
    .prop_map(|set| set.into_iter().collect())
}

proptest! {
    #[test]
    fn csv_roundtrip(names in name_list()) {
        let l = RankedList::from_sorted_names(ListSource::Alexa, names);
        let back = RankedList::from_csv(ListSource::Alexa, &l.to_csv()).unwrap();
        prop_assert_eq!(back, l);
    }

    #[test]
    fn normalization_is_idempotent(names in name_list()) {
        let psl = PublicSuffixList::builtin();
        let l = RankedList::from_sorted_names(ListSource::Umbrella, names);
        let once = normalize_ranked(&psl, &l);
        let twice = normalize_ranked(&psl, &once.to_ranked_list());
        // Re-normalizing a normalized list changes nothing and deviates 0%.
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(twice.deviation_percent(), 0.0);
        let a: Vec<&str> = once.entries.iter().map(|(d, _)| d.as_str()).collect();
        let b: Vec<&str> = twice.entries.iter().map(|(d, _)| d.as_str()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn normalization_never_grows(names in name_list()) {
        let psl = PublicSuffixList::builtin();
        let l = RankedList::from_sorted_names(ListSource::Umbrella, names);
        let n = normalize_ranked(&psl, &l);
        prop_assert!(n.len() <= l.len());
        prop_assert!(n.deviating <= n.raw_len);
        // Normalized values are sorted ascending.
        for w in n.entries.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn tranco_contains_exactly_the_union(a in name_list(), b in name_list()) {
        let la = RankedList::from_sorted_names(ListSource::Alexa, a.clone());
        let lb = RankedList::from_sorted_names(ListSource::Majestic, b.clone());
        let t = tranco::build(&[&la, &lb], usize::MAX);
        let union: std::collections::HashSet<&str> =
            a.iter().chain(b.iter()).map(String::as_str).collect();
        prop_assert_eq!(t.len(), union.len());
        for e in &t.entries {
            prop_assert!(union.contains(e.name.as_str()));
        }
        // Rank-1 everywhere dominates: the name ranked first in both lists
        // (if shared) must come first.
        if a.first() == b.first() {
            prop_assert_eq!(t.entries[0].name.as_str(), a[0].as_str());
        }
    }

    #[test]
    fn tranco_is_input_order_invariant(a in name_list(), b in name_list()) {
        let la = RankedList::from_sorted_names(ListSource::Alexa, a);
        let lb = RankedList::from_sorted_names(ListSource::Majestic, b);
        let t1 = tranco::build(&[&la, &lb], usize::MAX);
        let t2 = tranco::build(&[&lb, &la], usize::MAX);
        prop_assert_eq!(t1.entries, t2.entries);
    }

    #[test]
    fn trexa_has_no_duplicates_and_covers_both(a in name_list(), b in name_list()) {
        let alexa = RankedList::from_sorted_names(ListSource::Alexa, a.clone());
        let tr = RankedList::from_sorted_names(ListSource::Tranco, b.clone());
        let t = trexa::build(&tr, &alexa, 2, usize::MAX);
        let names: Vec<&str> = t.entries.iter().map(|e| e.name.as_str()).collect();
        let set: std::collections::HashSet<&str> = names.iter().copied().collect();
        prop_assert_eq!(set.len(), names.len(), "duplicates in Trexa output");
        let union: std::collections::HashSet<&str> =
            a.iter().chain(b.iter()).map(String::as_str).collect();
        prop_assert_eq!(set.len(), union.len(), "Trexa must cover the union");
    }
}
